package ckks

import (
	"testing"

	"hydra/internal/ring"
)

// benchKeySwitchSetup encrypts a batch and returns the C1 components plus the
// rotation-by-1 switching key, the digit-decomposition inner product being the
// dominant cost either way.
func benchKeySwitchSetup(b *testing.B, batch int) (*testContext, []*ring.Poly, *SwitchingKey) {
	b.Helper()
	tc := newTestContext(b, 12, 4, []int{1})
	k := ring.GaloisElementForRotation(tc.params.N(), 1)
	swk := tc.eval.rtks.Keys[k]
	cts := encryptBatch(tc, batch)
	ds := make([]*ring.Poly, batch)
	for i, ct := range cts {
		ds[i] = ct.C1
	}
	return tc, ds, swk
}

// BenchmarkKeySwitchPerCt8 is the per-ciphertext dispatch baseline: eight
// independent keyswitches, each re-streaming every key row from memory.
func BenchmarkKeySwitchPerCt8(b *testing.B) {
	tc, ds, swk := benchKeySwitchSetup(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			tc.eval.keySwitch(d, swk)
		}
	}
}

// BenchmarkKeySwitchBatch8 is the batched path: one pass over the key rows
// feeds all eight accumulators, and the NTTs ride the batch entry points.
func BenchmarkKeySwitchBatch8(b *testing.B) {
	tc, ds, swk := benchKeySwitchSetup(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.KeySwitchBatch(ds, swk)
	}
}
