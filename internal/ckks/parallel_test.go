package ckks

// Differential parallel-vs-serial harness: every evaluator operation is run
// twice on identical inputs and keys — once with the limb pool forced serial,
// once fanned out across workers — and the resulting ciphertexts must be
// bit-identical. This is the executable statement of the execution layer's
// contract: scheduling must never change results, because limbs are
// independent and modular arithmetic is exact.

import (
	"fmt"
	"testing"

	"hydra/internal/ring"
)

func ctBitIdentical(a, b *Ciphertext) error {
	if a == nil || b == nil {
		if a != b {
			return fmt.Errorf("one result is nil")
		}
		return nil
	}
	if a.Scale != b.Scale {
		return fmt.Errorf("scale %g vs %g", a.Scale, b.Scale)
	}
	if !a.C0.Equal(b.C0) {
		return fmt.Errorf("C0 differs")
	}
	if !a.C1.Equal(b.C1) {
		return fmt.Errorf("C1 differs")
	}
	return nil
}

// diffOp runs op in forced-serial then parallel mode and compares bitwise.
func diffOp(t *testing.T, name string, op func() *Ciphertext) {
	t.Helper()
	ring.SetSerial(true)
	want := op()
	ring.SetSerial(false)
	got := op()
	if err := ctBitIdentical(got, want); err != nil {
		t.Errorf("%s: parallel differs from serial: %v", name, err)
	}
}

func runDifferentialSuite(t *testing.T, logN, levels int, seed int64) {
	// Force a real multi-worker pool even on single-core CI machines so the
	// parallel arm actually exercises helper goroutines.
	old := ring.MaxWorkers()
	ring.SetMaxWorkers(4)
	defer ring.SetMaxWorkers(old)
	defer ring.SetSerial(false)

	rots := []int{1, 2, 5, -1}
	tc := newTestContext(t, logN, levels, rots)
	vals := randomComplex(tc.params.Slots(), seed)
	vals2 := randomComplex(tc.params.Slots(), seed+1)
	pt, err := tc.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := tc.enc.Encode(vals2)
	if err != nil {
		t.Fatal(err)
	}
	ctA := tc.encr.Encrypt(pt)
	ctB := tc.encr.Encrypt(pt2)

	pt0, err := tc.enc.EncodeAtLevel(vals, tc.params.DefaultScale(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ct0 := tc.encr.Encrypt(pt0)

	ev := tc.eval
	ops := []struct {
		name string
		fn   func() *Ciphertext
	}{
		{"Add", func() *Ciphertext { return ev.Add(ctA, ctB) }},
		{"Sub", func() *Ciphertext { return ev.Sub(ctA, ctB) }},
		{"Neg", func() *Ciphertext { return ev.Neg(ctA) }},
		{"AddPlain", func() *Ciphertext { return ev.AddPlain(ctA, pt) }},
		{"AddConst", func() *Ciphertext { return ev.AddConst(ctA, 1.25) }},
		{"MulPlain", func() *Ciphertext { return ev.MulPlain(ctA, pt2) }},
		{"MulByConst", func() *Ciphertext { return ev.MulByConst(ctA, -0.75) }},
		{"CMult", func() *Ciphertext { return ev.MulRelin(ctA, ctB) }},
		{"CMult+Rescale", func() *Ciphertext { return ev.Rescale(ev.MulRelin(ctA, ctB)) }},
		{"PMult+Rescale", func() *Ciphertext { return ev.Rescale(ev.MulPlain(ctA, pt2)) }},
		{"Rotate", func() *Ciphertext { return ev.Rotate(ctA, 2) }},
		{"RotateNeg", func() *Ciphertext { return ev.Rotate(ctA, -1) }},
		{"Conjugate", func() *Ciphertext { return ev.Conjugate(ctA) }},
		{"RaiseModulus", func() *Ciphertext { return ev.RaiseModulus(ct0) }},
	}
	for _, op := range ops {
		diffOp(t, op.name, op.fn)
	}

	// RotateHoisted: one decomposition shared by several rotations.
	hoist := func() map[int]*Ciphertext { return ev.RotateHoisted(ctA, rots) }
	ring.SetSerial(true)
	want := hoist()
	ring.SetSerial(false)
	got := hoist()
	for _, r := range rots {
		if err := ctBitIdentical(got[r], want[r]); err != nil {
			t.Errorf("RotateHoisted(%d): parallel differs from serial: %v", r, err)
		}
	}
}

func TestParallelSerialDifferential(t *testing.T) {
	// Property-style sweep: several parameter sets (including the required
	// N = 2^12) and several input seeds.
	cases := []struct {
		logN, levels int
		seeds        []int64
	}{
		{4, 2, []int64{1, 2, 3}},
		{6, 3, []int64{4, 5}},
		{12, 3, []int64{6}}, // N = 2^12
	}
	for _, c := range cases {
		for _, seed := range c.seeds {
			t.Run(fmt.Sprintf("logN=%d/levels=%d/seed=%d", c.logN, c.levels, seed), func(t *testing.T) {
				runDifferentialSuite(t, c.logN, c.levels, seed)
			})
		}
	}
}

// TestParallelSerialDifferentialScratchReuse runs the CMult chain twice in
// parallel mode so the second pass consumes recycled scratch buffers and
// rows — catching any stale-state leak through the pools.
func TestParallelSerialDifferentialScratchReuse(t *testing.T) {
	old := ring.MaxWorkers()
	ring.SetMaxWorkers(4)
	defer ring.SetMaxWorkers(old)
	defer ring.SetSerial(false)
	tc := newTestContext(t, 6, 3, []int{1})
	vals := randomComplex(tc.params.Slots(), 9)
	pt, err := tc.enc.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encr.Encrypt(pt)

	chain := func() *Ciphertext {
		x := tc.eval.Rescale(tc.eval.MulRelin(ct, ct))
		return tc.eval.Rotate(x, 1)
	}
	ring.SetSerial(true)
	want := chain()
	ring.SetSerial(false)
	first := chain()
	second := chain()
	if err := ctBitIdentical(first, want); err != nil {
		t.Fatalf("first parallel pass differs: %v", err)
	}
	if err := ctBitIdentical(second, want); err != nil {
		t.Fatalf("second parallel pass (recycled scratch) differs: %v", err)
	}
}
