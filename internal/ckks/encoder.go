package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"hydra/internal/ring"
)

// Plaintext is an encoded message: an RNS polynomial (kept in the NTT domain
// so it can multiply ciphertexts directly) together with its scale.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
}

// Level returns the plaintext's level.
func (p *Plaintext) Level() int { return p.Value.Level() }

// Encoder maps complex slot vectors to ring elements via the canonical
// embedding (the "special FFT" of HEAAN/Lattigo).
type Encoder struct {
	params   *Parameters
	m        int          // 2N
	rotGroup []int        // 5^j mod 2N, j < N/2
	roots    []complex128 // e^(2πi·j/2N), j ≤ 2N
}

// Params returns the encoder's parameter set.
func (e *Encoder) Params() *Parameters { return e.params }

// NewEncoder builds an encoder for the given parameters.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	e := &Encoder{params: params, m: m}
	e.rotGroup = make([]int, n/2)
	five := 1
	for i := range e.rotGroup {
		e.rotGroup[i] = five
		five = (five * 5) % m
	}
	e.roots = make([]complex128, m+1)
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.roots[j] = cmplx.Exp(complex(0, angle))
	}
	return e
}

// fftSpecialInv is the inverse canonical-embedding FFT (encode direction).
func (e *Encoder) fftSpecialInv(vals []complex128) {
	size := len(vals)
	for length := size; length >= 2; length >>= 1 {
		for i := 0; i < size; i += length {
			lenh := length >> 1
			lenq := length << 2
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * e.m / lenq
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.roots[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseComplex(vals)
	inv := complex(1/float64(size), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// fftSpecial is the forward canonical-embedding FFT (decode direction).
func (e *Encoder) fftSpecial(vals []complex128) {
	bitReverseComplex(vals)
	size := len(vals)
	for length := 2; length <= size; length <<= 1 {
		for i := 0; i < size; i += length {
			lenh := length >> 1
			lenq := length << 2
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * e.m / lenq
				u := vals[i+j]
				v := vals[i+j+lenh] * e.roots[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

func bitReverseComplex(vals []complex128) {
	n := len(vals)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// encodeToCoeffs runs the canonical-embedding FFT and scaling, returning the
// signed integer coefficients of the encoded polynomial — the level-agnostic
// front half shared by EncodeAtLevel and EncodeExtAtLevel.
func (e *Encoder) encodeToCoeffs(values []complex128, scale float64) ([]*big.Int, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	buf := make([]complex128, slots)
	copy(buf, values)
	e.fftSpecialInv(buf)

	n := e.params.N()
	nh := n / 2
	gap := nh / slots
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		coeffs[i] = new(big.Int)
	}
	for j := 0; j < slots; j++ {
		setScaledFloat(coeffs[j*gap], real(buf[j])*scale)
		setScaledFloat(coeffs[nh+j*gap], imag(buf[j])*scale)
	}
	return coeffs, nil
}

// EncodeAtLevel encodes values (len ≤ Slots()) into a fresh plaintext at the
// given level with the given scale. Shorter inputs are zero-padded.
func (e *Encoder) EncodeAtLevel(values []complex128, scale float64, level int) (*Plaintext, error) {
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range", level)
	}
	coeffs, err := e.encodeToCoeffs(values, scale)
	if err != nil {
		return nil, err
	}
	poly := e.params.RingQP().NewPoly(level)
	e.params.RingQP().SetBigInt(coeffs, poly)
	e.params.RingQP().NTT(poly)
	return &Plaintext{Value: poly, Scale: scale}, nil
}

// ExtPlaintext is a plaintext encoded over the extended basis q_0..q_level, P:
// the operand form that multiplies extended-basis keyswitch accumulators
// (ExtCiphertext) without leaving the P·Q domain. Rows[0..Lvl] are the q_i
// residues and Rows[Lvl+1] the residue mod P, all NTT-domain canonical.
// ExtPlaintexts are heap-allocated (not pooled): they live in compiled
// transform plans and are reused across evaluations.
type ExtPlaintext struct {
	Lvl   int
	Rows  [][]uint64
	Scale float64
}

// row returns the residue row for ring table index tblIdx, where special is
// the table index of P.
func (p *ExtPlaintext) row(tblIdx, special int) []uint64 {
	if tblIdx == special {
		return p.Rows[p.Lvl+1]
	}
	return p.Rows[tblIdx]
}

// EncodeExtAtLevel encodes values into an extended-basis plaintext at the
// given level: the same canonical-embedding encode as EncodeAtLevel plus the
// extra residue row mod P that the double-hoisted keyswitch path consumes.
func (e *Encoder) EncodeExtAtLevel(values []complex128, scale float64, level int) (*ExtPlaintext, error) {
	if level < 0 || level > e.params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range", level)
	}
	coeffs, err := e.encodeToCoeffs(values, scale)
	if err != nil {
		return nil, err
	}
	r := e.params.RingQP()
	pIdx := e.params.SpecialIndex()
	rows := make([][]uint64, level+2)
	ring.ForEachLimb(level+2, func(jj int) {
		tblIdx := jj
		if jj == level+1 {
			tblIdx = pIdx
		}
		q := new(big.Int).SetUint64(r.Moduli[tblIdx])
		tmp := new(big.Int)
		row := make([]uint64, r.N)
		for t := range row {
			row[t] = tmp.Mod(coeffs[t], q).Uint64()
		}
		r.Tables[tblIdx].Forward(row)
		rows[jj] = row
	})
	return &ExtPlaintext{Lvl: level, Rows: rows, Scale: scale}, nil
}

// Encode encodes at the maximum ciphertext level with the default scale.
func (e *Encoder) Encode(values []complex128) (*Plaintext, error) {
	return e.EncodeAtLevel(values, e.params.DefaultScale(), e.params.MaxLevel())
}

func setScaledFloat(dst *big.Int, v float64) {
	f := new(big.Float).SetFloat64(v)
	f.Int(dst) // truncation toward zero; sub-unit rounding error is absorbed by the scheme noise
}

// Decode decodes a plaintext back to a complex slot vector.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	r := e.params.RingQP()
	poly := pt.Value.CopyNew()
	if poly.IsNTT {
		r.INTT(poly)
	}
	n := e.params.N()
	coeffs := make([]*big.Int, n)
	r.ToBigInt(poly, coeffs)

	q := r.ModulusProduct(poly.Level())
	half := new(big.Int).Rsh(q, 1)
	scale := new(big.Float).SetFloat64(pt.Scale)
	slots := e.params.Slots()
	nh := n / 2
	gap := nh / slots
	buf := make([]complex128, slots)
	for j := 0; j < slots; j++ {
		re := centeredFloat(coeffs[j*gap], q, half, scale)
		im := centeredFloat(coeffs[nh+j*gap], q, half, scale)
		buf[j] = complex(re, im)
	}
	e.fftSpecial(buf)
	return buf
}

func centeredFloat(v, q, half *big.Int, scale *big.Float) float64 {
	c := new(big.Int).Set(v)
	if c.Cmp(half) > 0 {
		c.Sub(c, q)
	}
	f := new(big.Float).SetInt(c)
	f.Quo(f, scale)
	out, _ := f.Float64()
	return out
}
