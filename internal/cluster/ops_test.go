package cluster

import (
	"context"
	"math/cmplx"
	"testing"

	"hydra/internal/ckks"
)

// The conformance harness's cluster lowering leans on the OpNeg, OpConjugate
// and OpRaise instructions (negation inside the double-angle iterations, the
// conjugate branch and the ModRaise of the bootstrap pipeline); pin their
// card semantics against the evaluator they wrap.
func TestNegConjugateRaiseOps(t *testing.T) {
	params := ckks.TestParameters(5, 3)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, nil, true) // conjugation key only
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 2)
	decr := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(0.25*float64(i%5), -0.125*float64(i%3))
	}

	t.Run("neg-conjugate", func(t *testing.T) {
		pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), params.MaxLevel())
		if err != nil {
			t.Fatal(err)
		}
		cl := New(params, eval, 2)
		cl.Load(0, "x", encr.Encrypt(pt))
		progs := [][]Instr{
			{
				{Op: OpNeg, Dst: "nx", Src1: "x"},
				{Op: OpSend, Src1: "nx", Peer: 1, Tag: 1},
				{Op: OpRecv, Dst: "y", Tag: 2},
			},
			{
				{Op: OpRecv, Dst: "nx", Tag: 1},
				{Op: OpConjugate, Dst: "y", Src1: "nx"},
				{Op: OpSend, Src1: "y", Peer: 0, Tag: 2},
			},
		}
		if err := cl.Run(context.Background(), progs); err != nil {
			t.Fatal(err)
		}
		out, err := cl.Get(0, "y")
		if err != nil {
			t.Fatal(err)
		}
		got := enc.Decode(decr.Decrypt(out))
		for i := range vals {
			want := -cmplx.Conj(vals[i])
			if e := cmplx.Abs(got[i] - want); e > 1e-6 {
				t.Fatalf("slot %d: got %v want %v (err %g)", i, got[i], want, e)
			}
		}
	})

	t.Run("raise", func(t *testing.T) {
		pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), 0)
		if err != nil {
			t.Fatal(err)
		}
		ct := encr.Encrypt(pt)
		cl := New(params, eval, 1)
		cl.Load(0, "x", ct.CopyNew())
		progs := [][]Instr{{{Op: OpRaise, Dst: "y", Src1: "x"}}}
		if err := cl.Run(context.Background(), progs); err != nil {
			t.Fatal(err)
		}
		out, err := cl.Get(0, "y")
		if err != nil {
			t.Fatal(err)
		}
		if out.Level() != params.MaxLevel() {
			t.Fatalf("raise left level %d, want %d", out.Level(), params.MaxLevel())
		}
		// ModRaise decrypts to m + q0·I, so a slot-value comparison is
		// meaningless here; the op's contract is exactly the evaluator's.
		if want := eval.RaiseModulus(ct); !out.Equal(want) {
			t.Fatal("cluster OpRaise differs from Evaluator.RaiseModulus")
		}
	})
}
