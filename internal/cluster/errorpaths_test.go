package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hydra/internal/ckks"
)

// TestCardFailureUnblocksPeers is the liveness test for the abort broadcast:
// card 0 dies on an undefined register while card 1 is parked on a Recv that
// will never be satisfied. Without the abort channel this deadlocks Run
// forever; with it, Run returns the root-cause error promptly.
func TestCardFailureUnblocksPeers(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	progs := [][]Instr{
		{{Op: OpRotate, Dst: "y", Src1: "missing", Imm: 1}},
		{{Op: OpRecv, Dst: "u", Tag: 7}},
	}
	done := make(chan error, 1)
	go func() { done <- cl.Run(context.Background(), progs) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the failing card")
		}
		if !strings.Contains(err.Error(), "undefined") {
			t.Fatalf("want the root-cause register error, got: %v", err)
		}
		if errors.Is(err, errAborted) {
			t.Fatalf("abort must not mask the root cause: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked: peer card was never unblocked")
	}
}

// TestCardFailureUnblocksBlockedSend covers the other blocking switch
// operation: card 0 saturates card 1's link buffer and blocks in OpSend
// while card 1 fails without draining. The abort must unwind the sender.
func TestCardFailureUnblocksBlockedSend(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	ct := e.encryptSeq(e.params.DefaultScale())
	cl.Load(0, "x", ct)
	// The switch buffers 64 frames per link; 70 sends guarantee card 0 blocks.
	var p0 []Instr
	for i := 0; i < 70; i++ {
		p0 = append(p0, Instr{Op: OpSend, Src1: "x", Peer: 1, Tag: i})
	}
	progs := [][]Instr{p0, {{Op: OpPMult, Dst: "y", Src1: "nope"}}}
	done := make(chan error, 1)
	go func() { done <- cl.Run(context.Background(), progs) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the failing card")
		}
		if !strings.Contains(err.Error(), "card 1") {
			t.Fatalf("want card 1's failure as root cause, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked: blocked sender was never unblocked")
	}
}

// TestRecvFailureAfterBadFrame exercises the unmarshal error path mid-program
// while the sender has more work queued behind the switch.
func TestRecvFailureAfterBadFrame(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	// Inject a corrupt frame directly into card 1's link, then have card 1
	// receive it while card 0 waits for a reply that will never come.
	cl.links[1] <- frame{tag: 3, data: []byte("not a ciphertext")}
	progs := [][]Instr{
		{{Op: OpRecv, Dst: "u", Tag: 9}},
		{{Op: OpRecv, Dst: "v", Tag: 3}},
	}
	done := make(chan error, 1)
	go func() { done <- cl.Run(context.Background(), progs) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an unmarshal error")
		}
		if !strings.Contains(err.Error(), "card 1") {
			t.Fatalf("want card 1's unmarshal failure as root cause, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after a corrupt frame")
	}
}

// TestBuilderValidation covers the instruction-stream builders' error paths:
// mismatched step counts and malformed shapes must be rejected before any
// card runs.
func TestBuilderValidation(t *testing.T) {
	if _, err := BuildConv(2, ConvLayer{}); err == nil {
		t.Fatal("BuildConv: expected error for an empty layer")
	}
	if _, err := BuildConv(2, ConvLayer{Rotations: []int{0, 1}, Weights: []*ckks.Plaintext{nil}}); err == nil {
		t.Fatal("BuildConv: expected error for mismatched rotations/weights")
	}
	if _, err := BuildMatVec(4, 0, [][]*ckks.Plaintext{{}}); err == nil {
		t.Fatal("BuildMatVec: expected error for non-positive bs")
	}
	if _, err := BuildMatVec(4, 2, nil); err == nil {
		t.Fatal("BuildMatVec: expected error for zero giant steps")
	}
	if _, err := BuildMatVec(3, 2, [][]*ckks.Plaintext{{nil, nil}}); err == nil {
		t.Fatal("BuildMatVec: expected error for non-power-of-two card count")
	}
	// Mismatched step count: giant-step row shorter than bs.
	if _, err := BuildMatVec(4, 2, [][]*ckks.Plaintext{{nil}}); err == nil {
		t.Fatal("BuildMatVec: expected error for a short diagonal row")
	}
	if _, err := BuildPolySplit([]float64{1, 2, 3, 4, 5}, 8); err == nil {
		t.Fatal("BuildPolySplit: expected error for degree below the split")
	}
	if _, err := BuildPolySplit(make([]float64, 20), 8); err == nil {
		t.Fatal("BuildPolySplit: expected error for degree beyond two subtrees")
	}
}

// TestCancellationUnblocksParkedRecv is the serving-layer timeout path: both
// cards are parked on receives that no peer will ever satisfy (a hung job),
// and only the caller's context cancellation can unwind them. Run must
// return promptly with the context's error, not the abort marker.
func TestCancellationUnblocksParkedRecv(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	progs := [][]Instr{
		{{Op: OpRecv, Dst: "u", Tag: 40}},
		{{Op: OpRecv, Dst: "v", Tag: 41}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- cl.Run(ctx, progs) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected a cancellation error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in the chain, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run ignored the cancelled context")
	}
}

// TestCancellationUnblocksBlockedSend covers the other parked switch
// operation under cancellation: card 0 saturates card 1's link buffer while
// card 1 never drains it (it is itself parked on a recv).
func TestCancellationUnblocksBlockedSend(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	ct := e.encryptSeq(e.params.DefaultScale())
	cl.Load(0, "x", ct)
	var p0 []Instr
	for i := 0; i < 70; i++ {
		p0 = append(p0, Instr{Op: OpSend, Src1: "x", Peer: 1, Tag: i})
	}
	progs := [][]Instr{p0, {{Op: OpRecv, Dst: "v", Tag: 99}}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- cl.Run(ctx, progs) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in the chain, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run ignored the cancelled context while a send was parked")
	}
}

// TestDeadlineAbortsComputeBoundProgram proves a card that never touches the
// switch still honors the context: a long compute-only stream stops at the
// first instruction boundary after the deadline passes.
func TestDeadlineAbortsComputeBoundProgram(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 1)
	ct := e.encryptSeq(e.params.DefaultScale())
	cl.Load(0, "x", ct)
	var p0 []Instr
	for i := 0; i < 100000; i++ {
		p0 = append(p0, Instr{Op: OpRotate, Dst: "x", Src1: "x", Imm: 1})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := cl.Run(ctx, [][]Instr{p0})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got: %v", err)
	}
}
