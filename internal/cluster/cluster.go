// Package cluster is a functional scale-out FHE runtime: the data-plane
// counterpart of internal/runtime. Every card is a goroutine owning real
// CKKS state (an evaluator, its keys, and a named ciphertext store); cards
// execute instruction scripts — Rotate, PMult, CMult, Add, Rescale,
// polynomial steps — and exchange serialized ciphertexts over a switch of
// channels, with the Send-After-Compute / Compute-After-Receive ordering
// arising naturally from the per-card program order.
//
// This realizes, at laptop scale, the paper's full stack: the host preloads
// per-card instruction streams (Section IV-D), the cards run them with
// hardware-style synchronization, and the arithmetic is the actual CKKS
// arithmetic of internal/ckks rather than a cost model. Tests validate the
// Section III mappings end-to-end: a ring-broadcast convolution layer and a
// distributed BSGS matrix-vector product computed by 4 cards decrypt to the
// same values as their single-card execution.
//
// Concurrency: cards are plain goroutines (they must be, since a card can
// block on a switch receive while its peer computes), but the CKKS ops they
// execute fan RNS-limb work out through the single global worker pool in
// internal/ring. The pool's slot acquisition is non-blocking and the calling
// card always participates, so nesting cards × limbs stays bounded by
// ring.MaxWorkers (GOMAXPROCS by default) and cannot deadlock; a saturated
// pool simply degrades card-local limb work to inline execution.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hydra/internal/ckks"
	"hydra/internal/hefloat"
)

// errAborted marks a card that was unblocked by the abort broadcast rather
// than failing on its own account; Run reports the root cause instead.
var errAborted = errors.New("aborted: a peer card failed")

// OpCode enumerates the card instruction set.
type OpCode int

// Card instructions. Register operands name entries of the card's ciphertext
// store; Send/Recv move ciphertexts through the switch.
const (
	OpRotate     OpCode = iota // Dst = Rotate(Src1, Imm)
	OpPMult                    // Dst = Src1 ⊙ plaintext operand
	OpCMult                    // Dst = Src1 · Src2 (relinearized)
	OpAdd                      // Dst = Src1 + Src2
	OpSub                      // Dst = Src1 - Src2
	OpRescale                  // Dst = Rescale(Src1)
	OpMulConst                 // Dst = Rescale(Src1 · Const)
	OpAddConst                 // Dst = Src1 + Const
	OpAddAligned               // Dst = Src1 + Src2, aligning mismatched scales/levels
	OpCopy                     // Dst = Src1
	OpSend                     // transmit Src1 to card Peer under tag Tag
	OpRecv                     // receive tag Tag into Dst
	OpNeg                      // Dst = -Src1
	OpConjugate                // Dst = Conjugate(Src1)
	OpRaise                    // Dst = RaiseModulus(Src1); Src1 must sit at level 0
)

// Instr is one instruction of a card's stream.
type Instr struct {
	Op         OpCode
	Dst        string
	Src1, Src2 string
	Imm        int             // rotation amount
	Const      float64         // scalar operand (OpMulConst, OpAddConst)
	Plain      *ckks.Plaintext // PMult operand
	Peer       int             // Send destination
	Tag        int             // Send/Recv pairing
}

// Card is one functional accelerator node.
type Card struct {
	ID    int
	Eval  *ckks.Evaluator
	Store map[string]*ckks.Ciphertext
}

// Cluster wires cards together through buffered channels (the switch).
type Cluster struct {
	Params *ckks.Parameters
	Cards  []*Card
	// links[dst] carries framed ciphertexts addressed to dst.
	links []chan frame
}

type frame struct {
	tag  int
	data []byte
}

// New builds a cluster of n cards sharing an evaluator template. Each card
// gets its own store; the evaluator (keys) is shared read-only, as the paper
// preloads identical evaluation keys onto every FPGA.
func New(params *ckks.Parameters, eval *ckks.Evaluator, n int) *Cluster {
	cl := &Cluster{Params: params}
	for i := 0; i < n; i++ {
		cl.Cards = append(cl.Cards, &Card{ID: i, Eval: eval, Store: map[string]*ckks.Ciphertext{}})
		cl.links = append(cl.links, make(chan frame, 64))
	}
	return cl
}

// Load places a ciphertext into a card's store (host preloading).
func (cl *Cluster) Load(card int, name string, ct *ckks.Ciphertext) {
	cl.Cards[card].Store[name] = ct.CopyNew()
}

// Run executes one instruction stream per card concurrently and waits for
// all of them (the Procedure 2 completion signal). The context bounds the
// whole execution: cancellation (a serving-layer timeout, a dropped client)
// unblocks every card — including cards parked on switch sends or receives —
// and Run returns the context's error.
//
// If any card fails mid-program, the failure is broadcast through an abort
// channel so peers blocked on switch sends or receives unwind instead of
// deadlocking; Run then reports the root-cause error rather than the
// secondary aborts. After a failed or cancelled Run the switch may hold
// stale frames, so the cluster must not be reused.
func (cl *Cluster) Run(ctx context.Context, programs [][]Instr) error {
	if len(programs) != len(cl.Cards) {
		return fmt.Errorf("cluster: %d programs for %d cards", len(programs), len(cl.Cards))
	}
	abort := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	errs := make([]error, len(cl.Cards))
	for i, prog := range programs {
		wg.Add(1)
		go func(card *Card, prog []Instr, slot *error) {
			defer wg.Done()
			if err := cl.execute(ctx, card, prog, abort); err != nil {
				*slot = err
				once.Do(func() { close(abort) })
			}
		}(cl.Cards[i], prog, &errs[i])
	}
	wg.Wait()
	var aborted error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errAborted) {
			if aborted == nil {
				aborted = fmt.Errorf("cluster: card %d: %w", i, err)
			}
			continue
		}
		return fmt.Errorf("cluster: card %d: %w", i, err)
	}
	return aborted
}

// execute runs a card's stream in order. Receives block on the switch; the
// per-tag framing keeps out-of-order arrivals from earlier broadcasts safe
// because programs consume tags in emission order. Blocking switch operations
// watch both the abort channel (a peer failure cannot strand this card) and
// the context (a caller cancellation cannot either); compute-bound cards poll
// the context between instructions so a cancelled program stops promptly even
// when it never touches the switch.
func (cl *Cluster) execute(ctx context.Context, card *Card, prog []Instr, abort <-chan struct{}) error {
	pending := map[int][]byte{} // tag -> frame that arrived early
	for pc, ins := range prog {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pc %d: %w", pc, err)
		}
		get := func(name string) (*ckks.Ciphertext, error) {
			ct, ok := card.Store[name]
			if !ok {
				return nil, fmt.Errorf("pc %d: register %q undefined", pc, name)
			}
			return ct, nil
		}
		switch ins.Op {
		case OpRotate:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.Rotate(src, ins.Imm)
		case OpPMult:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			if ins.Plain == nil {
				return fmt.Errorf("pc %d: PMult without plaintext", pc)
			}
			card.Store[ins.Dst] = card.Eval.MulPlain(src, ins.Plain)
		case OpCMult:
			a, err := get(ins.Src1)
			if err != nil {
				return err
			}
			b, err := get(ins.Src2)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.MulRelin(a, b)
		case OpAddAligned:
			a, err := get(ins.Src1)
			if err != nil {
				return err
			}
			b, err := get(ins.Src2)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = hefloat.AddAligned(card.Eval, a, b)
		case OpAdd, OpSub:
			a, err := get(ins.Src1)
			if err != nil {
				return err
			}
			b, err := get(ins.Src2)
			if err != nil {
				return err
			}
			if ins.Op == OpAdd {
				card.Store[ins.Dst] = card.Eval.Add(a, b)
			} else {
				card.Store[ins.Dst] = card.Eval.Sub(a, b)
			}
		case OpRescale:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.Rescale(src)
		case OpMulConst:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.Rescale(card.Eval.MulByConst(src, ins.Const))
		case OpAddConst:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.AddConst(src, ins.Const)
		case OpNeg:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.Neg(src)
		case OpConjugate:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.Conjugate(src)
		case OpRaise:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = card.Eval.RaiseModulus(src)
		case OpCopy:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			card.Store[ins.Dst] = src.CopyNew()
		case OpSend:
			src, err := get(ins.Src1)
			if err != nil {
				return err
			}
			if ins.Peer < 0 || ins.Peer >= len(cl.Cards) || ins.Peer == card.ID {
				return fmt.Errorf("pc %d: bad peer %d", pc, ins.Peer)
			}
			select {
			case cl.links[ins.Peer] <- frame{tag: ins.Tag, data: ckks.MarshalCiphertext(src)}:
			case <-abort:
				return fmt.Errorf("pc %d: send to card %d: %w", pc, ins.Peer, errAborted)
			case <-ctx.Done():
				return fmt.Errorf("pc %d: send to card %d: %w", pc, ins.Peer, ctx.Err())
			}
		case OpRecv:
			data, ok := pending[ins.Tag]
			for !ok {
				select {
				case f := <-cl.links[card.ID]:
					if f.tag == ins.Tag {
						data = f.data
						ok = true
					} else {
						pending[f.tag] = f.data
					}
				case <-abort:
					return fmt.Errorf("pc %d: recv tag %d: %w", pc, ins.Tag, errAborted)
				case <-ctx.Done():
					return fmt.Errorf("pc %d: recv tag %d: %w", pc, ins.Tag, ctx.Err())
				}
			}
			delete(pending, ins.Tag)
			ct, err := ckks.UnmarshalCiphertext(cl.Params, data)
			if err != nil {
				return fmt.Errorf("pc %d: %w", pc, err)
			}
			card.Store[ins.Dst] = ct
		default:
			return fmt.Errorf("pc %d: unknown opcode %d", pc, ins.Op)
		}
	}
	return nil
}

// Get retrieves a ciphertext from a card's store.
func (cl *Cluster) Get(card int, name string) (*ckks.Ciphertext, error) {
	ct, ok := cl.Cards[card].Store[name]
	if !ok {
		return nil, fmt.Errorf("cluster: card %d has no register %q", card, name)
	}
	return ct, nil
}
