package cluster

import (
	"context"
	"math"
	"math/cmplx"
	"testing"

	"hydra/internal/ckks"
)

type env struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
	eval   *ckks.Evaluator
}

func newEnv(t testing.TB, logN, levels int, rotations []int) *env {
	t.Helper()
	params := ckks.TestParameters(logN, levels)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rotations, false)
	return &env{
		params: params,
		enc:    ckks.NewEncoder(params),
		encr:   ckks.NewEncryptor(params, pk, 2),
		decr:   ckks.NewDecryptor(params, sk),
		eval:   ckks.NewEvaluator(params, rlk, rtks),
	}
}

func (e *env) encryptSeq(scale float64) *ckks.Ciphertext {
	vals := make([]complex128, e.params.Slots())
	for i := range vals {
		vals[i] = complex(math.Sin(float64(i)/3), 0)
	}
	pt, _ := e.enc.EncodeAtLevel(vals, scale, e.params.MaxLevel())
	return e.encr.Encrypt(pt)
}

func maxSlotErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestDistributedConvMatchesSingleCard(t *testing.T) {
	const cards = 4
	rotations := []int{0, 1, 2, 3, 4, 5, 6, 7}
	e := newEnv(t, 8, 3, rotations)
	ct := e.encryptSeq(e.params.DefaultScale())

	layer := ConvLayer{Rotations: rotations}
	for k := range rotations {
		w := make([]complex128, e.params.Slots())
		for i := range w {
			w[i] = complex(0.1*float64(k+1), 0)
		}
		pt, err := e.enc.EncodeAtLevel(w, e.params.DefaultScale(), ct.Level())
		if err != nil {
			t.Fatal(err)
		}
		layer.Weights = append(layer.Weights, pt)
	}

	progs, err := BuildConv(cards, layer)
	if err != nil {
		t.Fatal(err)
	}
	cl := New(e.params, e.eval, cards)
	for c := 0; c < cards; c++ {
		cl.Load(c, "x", ct)
	}
	if err := cl.Run(context.Background(), progs); err != nil {
		t.Fatal(err)
	}

	// Every card must hold every kernel output, identical to the
	// single-card computation.
	for k := range rotations {
		single := e.eval.Rescale(e.eval.MulPlain(e.eval.Rotate(ct, rotations[k]), layer.Weights[k]))
		want := e.enc.Decode(e.decr.Decrypt(single))
		name := "out" + string(rune('0'+k))
		for c := 0; c < cards; c++ {
			got, err := cl.Get(c, name)
			if err != nil {
				t.Fatalf("card %d: %v", c, err)
			}
			dec := e.enc.Decode(e.decr.Decrypt(got))
			if err := maxSlotErr(dec, want); err > 1e-5 {
				t.Fatalf("card %d kernel %d: error %g", c, k, err)
			}
		}
	}
}

func TestDistributedMatVecMatchesPlain(t *testing.T) {
	const cards = 4
	const bs = 4
	e := newEnv(t, 7, 3, allRots(1<<6))
	dim := e.params.Slots()
	gs := dim / bs

	// Random-ish dense matrix in diagonal form with BSGS pre-rotation.
	matrix := make([][]complex128, dim)
	for r := range matrix {
		matrix[r] = make([]complex128, dim)
		for c := range matrix[r] {
			matrix[r][c] = complex(math.Cos(float64(r*dim+c))/8, 0)
		}
	}
	ct := e.encryptSeq(e.params.DefaultScale())
	vals := e.enc.Decode(e.decr.Decrypt(ct))
	want := make([]complex128, dim)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			want[r] += matrix[r][c] * vals[c]
		}
	}

	diags := make([][]*ckks.Plaintext, gs)
	for g := 0; g < gs; g++ {
		diags[g] = make([]*ckks.Plaintext, bs)
		for j := 0; j < bs; j++ {
			d := g*bs + j
			diag := make([]complex128, dim)
			for t0 := 0; t0 < dim; t0++ {
				diag[t0] = matrix[t0][(t0+d)%dim]
			}
			// Pre-rotate right by g·bs, as EvaluateBSGS does.
			shifted := make([]complex128, dim)
			for t0 := 0; t0 < dim; t0++ {
				shifted[t0] = diag[(t0+dim-(g*bs)%dim)%dim]
			}
			pt, err := e.enc.EncodeAtLevel(shifted, e.params.DefaultScale(), ct.Level())
			if err != nil {
				t.Fatal(err)
			}
			diags[g][j] = pt
		}
	}

	progs, err := BuildMatVec(cards, bs, diags)
	if err != nil {
		t.Fatal(err)
	}
	cl := New(e.params, e.eval, cards)
	for c := 0; c < cards; c++ {
		cl.Load(c, "x", ct)
	}
	if err := cl.Run(context.Background(), progs); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cards; c++ {
		y, err := cl.Get(c, "y")
		if err != nil {
			t.Fatalf("card %d: %v", c, err)
		}
		got := e.enc.Decode(e.decr.Decrypt(y))
		if errv := maxSlotErr(got, want); errv > 1e-2 {
			t.Fatalf("card %d: matvec error %g", c, errv)
		}
	}
}

func allRots(dim int) []int {
	out := make([]int, 0, dim)
	for d := 1; d < dim; d++ {
		out = append(out, d)
	}
	return out
}

func TestClusterErrors(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	// Undefined register.
	err := cl.Run(context.Background(), [][]Instr{{{Op: OpRotate, Dst: "y", Src1: "missing", Imm: 1}}, nil})
	if err == nil {
		t.Fatal("expected undefined-register error")
	}
	// Bad peer.
	cl2 := New(e.params, e.eval, 2)
	ct := e.encryptSeq(e.params.DefaultScale())
	cl2.Load(0, "x", ct)
	err = cl2.Run(context.Background(), [][]Instr{{{Op: OpSend, Src1: "x", Peer: 5, Tag: 1}}, nil})
	if err == nil {
		t.Fatal("expected bad-peer error")
	}
	// Program count mismatch.
	if err := cl.Run(context.Background(), [][]Instr{nil}); err == nil {
		t.Fatal("expected program-count error")
	}
	// Get on missing register.
	if _, err := cl.Get(0, "nope"); err == nil {
		t.Fatal("expected missing-register error")
	}
}

func TestOutOfOrderTagsAreBuffered(t *testing.T) {
	e := newEnv(t, 6, 2, []int{1})
	cl := New(e.params, e.eval, 2)
	ct := e.encryptSeq(e.params.DefaultScale())
	cl.Load(0, "a", ct)
	cl.Load(0, "b", ct)
	// Card 0 sends tag 2 then tag 1; card 1 receives tag 1 first.
	progs := [][]Instr{
		{
			{Op: OpSend, Src1: "a", Peer: 1, Tag: 2},
			{Op: OpSend, Src1: "b", Peer: 1, Tag: 1},
		},
		{
			{Op: OpRecv, Dst: "first", Tag: 1},
			{Op: OpRecv, Dst: "second", Tag: 2},
		},
	}
	if err := cl.Run(context.Background(), progs); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(1, "first"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(1, "second"); err != nil {
		t.Fatal(err)
	}
}

func TestPolySplitMatchesSingleCard(t *testing.T) {
	// The paper's EvaExp two-subtree split (Fig. 3(a)): degree-7 polynomial,
	// lo on card 0, hi·x^4 on card 1.
	e := newEnv(t, 7, 10, nil)
	coeffs := []float64{0.3, -0.5, 0.2, 0.1, -0.15, 0.05, 0.12, -0.07}
	progs, err := BuildPolySplit(coeffs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Input values in [-1, 1].
	vals := make([]complex128, e.params.Slots())
	for i := range vals {
		vals[i] = complex(float64(i%13)/13-0.5, 0)
	}
	pt, _ := e.enc.Encode(vals)
	ct := e.encr.Encrypt(pt)
	cl := New(e.params, e.eval, 2)
	cl.Load(0, "x", ct)
	cl.Load(1, "x", ct)
	if err := cl.Run(context.Background(), progs); err != nil {
		t.Fatal(err)
	}
	y, err := cl.Get(0, "y")
	if err != nil {
		t.Fatal(err)
	}
	got := e.enc.Decode(e.decr.Decrypt(y))
	for i := range vals {
		x := real(vals[i])
		want := 0.0
		for j := len(coeffs) - 1; j >= 0; j-- {
			want = want*x + coeffs[j]
		}
		if diff := real(got[i]) - want; diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("slot %d: got %g want %g", i, real(got[i]), want)
		}
	}
}

func TestPolySplitValidation(t *testing.T) {
	if _, err := BuildPolySplit([]float64{1, 2, 3}, 3); err == nil {
		t.Fatal("expected power-of-two split error")
	}
	if _, err := BuildPolySplit([]float64{1, 2, 3}, 4); err == nil {
		t.Fatal("expected degree-range error")
	}
}
