package cluster

import (
	"fmt"

	"hydra/internal/ckks"
)

// Functional multi-card procedures: instruction-stream builders for the
// Section III mappings, executable on a Cluster with real ciphertexts.

// ConvLayer describes a simplified packed convolution layer: kernel k
// contributes Rotate(input, Rotations[k]) ⊙ Weights[k], and all kernel
// outputs must end up on every card (the Fig. 1-2 aggregation).
type ConvLayer struct {
	Rotations []int
	Weights   []*ckks.Plaintext
}

// BuildConv emits per-card instruction streams for the ring-broadcast
// convolution mapping: kernels are assigned round-robin; each finished
// output is sent to every other card while the next kernel computes. The
// input must be loaded as "x" on every card; outputs land as "out<k>"
// everywhere.
func BuildConv(cards int, layer ConvLayer) ([][]Instr, error) {
	n := len(layer.Rotations)
	if n == 0 || n != len(layer.Weights) {
		return nil, fmt.Errorf("cluster: conv layer needs matching rotations and weights")
	}
	progs := make([][]Instr, cards)
	tag := 0
	for k := 0; k < n; k++ {
		owner := k % cards
		out := fmt.Sprintf("out%d", k)
		progs[owner] = append(progs[owner],
			Instr{Op: OpRotate, Dst: "t", Src1: "x", Imm: layer.Rotations[k]},
			Instr{Op: OpPMult, Dst: "t", Src1: "t", Plain: layer.Weights[k]},
			Instr{Op: OpRescale, Dst: out, Src1: "t"},
		)
		for dst := 0; dst < cards; dst++ {
			if dst == owner {
				continue
			}
			progs[owner] = append(progs[owner], Instr{Op: OpSend, Src1: out, Peer: dst, Tag: tag})
			progs[dst] = append(progs[dst], Instr{Op: OpRecv, Dst: out, Tag: tag})
			tag++
		}
	}
	return progs, nil
}

// BuildMatVec emits the distributed BSGS matrix-vector product of
// Fig. 3(d): every card performs the bs baby-step rotations of "x"
// (uniform bs), the gs giant steps are split round-robin, per-card partials
// fold through a binary tree to card 0, and the result is broadcast back as
// "y" on every card. diags[g][j] is the plaintext diagonal for giant step g,
// baby step j (already pre-rotated as EvaluateBSGS expects).
func BuildMatVec(cards, bs int, diags [][]*ckks.Plaintext) ([][]Instr, error) {
	if bs <= 0 || len(diags) == 0 {
		return nil, fmt.Errorf("cluster: need positive bs and at least one giant step")
	}
	if cards&(cards-1) != 0 {
		return nil, fmt.Errorf("cluster: card count %d must be a power of two", cards)
	}
	progs := make([][]Instr, cards)
	// Baby steps on every card.
	for c := 0; c < cards; c++ {
		for j := 0; j < bs; j++ {
			progs[c] = append(progs[c], Instr{Op: OpRotate, Dst: fmt.Sprintf("b%d", j), Src1: "x", Imm: j})
		}
	}
	// Giant steps round-robin; each card accumulates its partial in "p".
	hasPartial := make([]bool, cards)
	for g, row := range diags {
		owner := g % cards
		if len(row) != bs {
			return nil, fmt.Errorf("cluster: giant step %d has %d diagonals, want %d", g, len(row), bs)
		}
		for j, pt := range row {
			if pt == nil {
				continue
			}
			progs[owner] = append(progs[owner],
				Instr{Op: OpPMult, Dst: "t", Src1: fmt.Sprintf("b%d", j), Plain: pt},
			)
			if j == 0 {
				progs[owner] = append(progs[owner], Instr{Op: OpCopy, Dst: "inner", Src1: "t"})
			} else {
				progs[owner] = append(progs[owner], Instr{Op: OpAdd, Dst: "inner", Src1: "inner", Src2: "t"})
			}
		}
		progs[owner] = append(progs[owner],
			Instr{Op: OpRescale, Dst: "inner", Src1: "inner"},
			Instr{Op: OpRotate, Dst: "inner", Src1: "inner", Imm: g * bs},
		)
		if hasPartial[owner] {
			progs[owner] = append(progs[owner], Instr{Op: OpAdd, Dst: "p", Src1: "p", Src2: "inner"})
		} else {
			progs[owner] = append(progs[owner], Instr{Op: OpCopy, Dst: "p", Src1: "inner"})
			hasPartial[owner] = true
		}
	}
	// Cards that received no giant step still need a neutral partial for the
	// tree; give them a zero contribution only if they will be asked to add.
	// (With round-robin assignment, card c has a partial iff c < len(diags).)

	// Tree aggregation to card 0 (Fig. 3(d)).
	tag := 1 << 20
	active := cards
	for active > 1 {
		half := active / 2
		for i := 0; i < half; i++ {
			src, dst := i+half, i
			if !hasPartial[src] {
				continue
			}
			progs[src] = append(progs[src], Instr{Op: OpSend, Src1: "p", Peer: dst, Tag: tag})
			if hasPartial[dst] {
				progs[dst] = append(progs[dst],
					Instr{Op: OpRecv, Dst: "q", Tag: tag},
					Instr{Op: OpAdd, Dst: "p", Src1: "p", Src2: "q"},
				)
			} else {
				progs[dst] = append(progs[dst], Instr{Op: OpRecv, Dst: "p", Tag: tag})
				hasPartial[dst] = true
			}
			tag++
		}
		active = half
	}
	// Broadcast the aggregate back as "y".
	progs[0] = append(progs[0], Instr{Op: OpCopy, Dst: "y", Src1: "p"})
	for dst := 1; dst < cards; dst++ {
		progs[0] = append(progs[0], Instr{Op: OpSend, Src1: "y", Peer: dst, Tag: tag})
		progs[dst] = append(progs[dst], Instr{Op: OpRecv, Dst: "y", Tag: tag})
		tag++
	}
	return progs, nil
}

// BuildPolySplit emits the paper's EvaExp two-subtree split (Fig. 3(a) and
// Section III-B) for a polynomial of degree ≤ 2·split-1 over two cards:
// p(x) = lo(x) + x^split · hi(x) with split a power of two. Card 1 evaluates
// the high subtree and the binary power x^split, multiplies and sends; card 0
// evaluates the low subtree in parallel (Horner) and folds the arrival in.
// Both cards must hold the input as "x"; the result lands as "y" on card 0.
func BuildPolySplit(coeffs []float64, split int) ([][]Instr, error) {
	if split < 2 || split&(split-1) != 0 {
		return nil, fmt.Errorf("cluster: split %d must be a power of two >= 2", split)
	}
	if len(coeffs) <= split || len(coeffs) > 2*split {
		return nil, fmt.Errorf("cluster: degree %d needs lo/hi halves around split %d", len(coeffs)-1, split)
	}
	lo, hi := coeffs[:split], coeffs[split:]
	horner := func(prog []Instr, cs []float64, dst string) []Instr {
		// dst = cs[last]; then dst = dst·x + cs[i] downward.
		prog = append(prog,
			Instr{Op: OpMulConst, Dst: dst, Src1: "x", Const: cs[len(cs)-1]},
		)
		if len(cs) >= 2 {
			prog = append(prog, Instr{Op: OpAddConst, Dst: dst, Src1: dst, Const: cs[len(cs)-2]})
		}
		for i := len(cs) - 3; i >= 0; i-- {
			prog = append(prog,
				Instr{Op: OpCMult, Dst: dst, Src1: dst, Src2: "x"},
				Instr{Op: OpRescale, Dst: dst, Src1: dst},
				Instr{Op: OpAddConst, Dst: dst, Src1: dst, Const: cs[i]},
			)
		}
		return prog
	}
	const tag = 1 << 24
	var p0, p1 []Instr
	// Card 1: hi(x), x^split by repeated squaring, product, send.
	p1 = horner(p1, hi, "h")
	p1 = append(p1, Instr{Op: OpCopy, Dst: "pw", Src1: "x"})
	for s := 1; s < split; s <<= 1 {
		p1 = append(p1,
			Instr{Op: OpCMult, Dst: "pw", Src1: "pw", Src2: "pw"},
			Instr{Op: OpRescale, Dst: "pw", Src1: "pw"},
		)
	}
	p1 = append(p1,
		Instr{Op: OpCMult, Dst: "t", Src1: "h", Src2: "pw"},
		Instr{Op: OpRescale, Dst: "t", Src1: "t"},
		Instr{Op: OpSend, Src1: "t", Peer: 0, Tag: tag},
	)
	// Card 0: lo(x) in parallel, then fold the arrival (the two branches went
	// through different rescale depths, so the add aligns scales).
	p0 = horner(p0, lo, "y")
	p0 = append(p0,
		Instr{Op: OpRecv, Dst: "u", Tag: tag},
		Instr{Op: OpAddAligned, Dst: "y", Src1: "y", Src2: "u"},
	)
	return [][]Instr{p0, p1}, nil
}
