package baseline

import "testing"

func TestTablesComplete(t *testing.T) {
	accels := []string{"CraterLake", "BTS", "ARK", "SHARP", "FAB-S", "Poseidon", "FAB-M", "Hydra-S", "Hydra-M", "Hydra-L"}
	for _, acc := range accels {
		row, ok := TableII[acc]
		if !ok {
			t.Fatalf("Table II missing %s", acc)
		}
		for _, bm := range Benchmarks {
			if row[bm] <= 0 {
				t.Fatalf("Table II %s/%s missing", acc, bm)
			}
		}
	}
	for _, acc := range []string{"CraterLake", "BTS", "ARK", "SHARP", "Hydra-S", "Hydra-M", "Hydra-L"} {
		row, ok := TableIII[acc]
		if !ok {
			t.Fatalf("Table III missing %s", acc)
		}
		for _, bm := range Benchmarks {
			if row[bm] <= 0 {
				t.Fatalf("Table III %s/%s missing", acc, bm)
			}
		}
	}
}

func TestPublishedOrderings(t *testing.T) {
	// Internal consistency of the published numbers: SHARP is the fastest
	// ASIC and BTS the slowest on every benchmark.
	for _, bm := range Benchmarks {
		if !(TableII["SHARP"][bm] < TableII["ARK"][bm] &&
			TableII["ARK"][bm] < TableII["CraterLake"][bm] &&
			TableII["CraterLake"][bm] < TableII["BTS"][bm]) {
			t.Fatalf("%s: ASIC ordering broken", bm)
		}
		if !(TableII["Hydra-L"][bm] < TableII["Hydra-M"][bm] &&
			TableII["Hydra-M"][bm] < TableII["Hydra-S"][bm]) {
			t.Fatalf("%s: Hydra prototype ordering broken", bm)
		}
	}
}

func TestASICProfiles(t *testing.T) {
	if len(ASICs) != 4 {
		t.Fatalf("expected 4 ASIC profiles, got %d", len(ASICs))
	}
	for _, a := range ASICs {
		if a.AreaMM2 <= 0 || a.PowerW <= 0 {
			t.Fatalf("%s: incomplete profile", a.Name)
		}
	}
}
