// Package baseline carries the published comparison points of the paper's
// evaluation: the Table II execution times and Table III EDAP values of the
// ASIC accelerators (CraterLake, BTS, ARK, SHARP) and the FPGA baselines.
// The ASICs have no open implementations and the paper itself compares
// against their reported simulator numbers, so these are constants; the FPGA
// baselines (FAB, Poseidon) are additionally modeled executably in
// internal/hw and internal/sim.
package baseline

// Benchmark names in Table II column order.
var Benchmarks = []string{"ResNet-18", "ResNet-50", "BERT-base", "OPT-6.7B"}

// Published full-system execution times in seconds (Table II).
var TableII = map[string]map[string]float64{
	"CraterLake": {"ResNet-18": 5.51, "ResNet-50": 89.76, "BERT-base": 76.34, "OPT-6.7B": 2615.11},
	"BTS":        {"ResNet-18": 32.81, "ResNet-50": 534.06, "BERT-base": 454.23, "OPT-6.7B": 15560.30},
	"ARK":        {"ResNet-18": 2.15, "ResNet-50": 34.95, "BERT-base": 29.73, "OPT-6.7B": 1018.34},
	"SHARP":      {"ResNet-18": 1.70, "ResNet-50": 27.68, "BERT-base": 23.54, "OPT-6.7B": 806.53},
	"FAB-S":      {"ResNet-18": 131.94, "ResNet-50": 2255.46, "BERT-base": 1302.68, "OPT-6.7B": 51813.24},
	"Poseidon":   {"ResNet-18": 55.05, "ResNet-50": 915.51, "BERT-base": 616.59, "OPT-6.7B": 24006.44},
	"FAB-M":      {"ResNet-18": 18.89, "ResNet-50": 287.27, "BERT-base": 208.54, "OPT-6.7B": 6841.11},
	"Hydra-S":    {"ResNet-18": 41.29, "ResNet-50": 686.63, "BERT-base": 462.44, "OPT-6.7B": 18004.83},
	"Hydra-M":    {"ResNet-18": 5.60, "ResNet-50": 86.79, "BERT-base": 72.31, "OPT-6.7B": 2382.18},
	"Hydra-L":    {"ResNet-18": 1.49, "ResNet-50": 12.94, "BERT-base": 13.81, "OPT-6.7B": 321.58},
}

// Published EDAP values (Table III; lower is better).
var TableIII = map[string]map[string]float64{
	"CraterLake": {"ResNet-18": 1.40, "ResNet-50": 371.4, "BERT-base": 268.7, "OPT-6.7B": 315260},
	"BTS":        {"ResNet-18": 53.81, "ResNet-50": 14257.4, "BERT-base": 10313.9, "OPT-6.7B": 12103166},
	"ARK":        {"ResNet-18": 0.54, "ResNet-50": 143.7, "BERT-base": 104.0, "OPT-6.7B": 122024},
	"SHARP":      {"ResNet-18": 0.09, "ResNet-50": 22.8, "BERT-base": 16.5, "OPT-6.7B": 19330},
	"Hydra-S":    {"ResNet-18": 0.12, "ResNet-50": 32.8, "BERT-base": 8.8, "OPT-6.7B": 12703},
	"Hydra-M":    {"ResNet-18": 0.15, "ResNet-50": 33.8, "BERT-base": 12.5, "OPT-6.7B": 13541},
	"Hydra-L":    {"ResNet-18": 0.59, "ResNet-50": 48.1, "BERT-base": 38.1, "OPT-6.7B": 16208},
}

// ASICProfile carries the physical characteristics used for the EDAP
// comparison (7nm-normalized, from the respective papers).
type ASICProfile struct {
	Name    string
	AreaMM2 float64
	PowerW  float64
}

// ASICs lists the four comparison ASICs.
var ASICs = []ASICProfile{
	{Name: "CraterLake", AreaMM2: 222.7, PowerW: 320},
	{Name: "BTS", AreaMM2: 373.6, PowerW: 163.2},
	{Name: "ARK", AreaMM2: 418.3, PowerW: 281.3},
	{Name: "SHARP", AreaMM2: 178.8, PowerW: 187.9},
}
