# Hydra reproduction — build/test entry points.
#
# `make ci` is the gate used before merging: vet + race-detector run over the
# concurrency-bearing packages (worker pool, evaluator, runtime, cluster),
# then the full tier-1 suite.

GO ?= go

.PHONY: all build test race ci bench fuzz golden-update

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run of the limb pool, the evaluator that fans work onto it,
# and the goroutine-card runtimes that nest it (includes the differential
# parallel-vs-serial harness).
race:
	$(GO) test -race ./internal/ring/... ./internal/ckks/... ./internal/runtime/... ./internal/cluster/...

ci:
	sh scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Short fuzz pass over the ISA task-program decoder.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=20s ./internal/isa/

# Regenerate the experiment golden snapshots after an intentional change.
golden-update:
	$(GO) test ./internal/experiments/ -run TestGolden -update
