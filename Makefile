# Hydra reproduction — build/test entry points.
#
# `make ci` is the gate used before merging: vet + race-detector run over the
# concurrency-bearing packages (worker pool, evaluator, runtime, cluster),
# then the full tier-1 suite.

GO ?= go

.PHONY: all build test lint race ci bench bench-json serve-bench compile-bench fuzz golden-update conformance conformance-update

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Domain-specific static analysis: enforces the FHE and concurrency
# invariants (no raw modular arithmetic outside internal/ring, no pooled
# scratch escaping its acquire/release window, no raw goroutines in hot
# packages, no float math in exact zones, no dropped errors in the
# scheduling layers). See DESIGN.md "Static invariants".
lint:
	$(GO) run ./cmd/hydra-lint ./...

# Race-detector run of the limb pool, the evaluator that fans work onto it,
# the goroutine-card runtimes that nest it (includes the differential
# parallel-vs-serial harness), and the multi-tenant serving layer. Matches
# the ci.sh race coverage: hefloat and the conformance matrix run -short to
# skip the slow bootstrap-convergence tests that add no race coverage.
race:
	$(GO) test -race ./internal/ring/... ./internal/ckks/... ./internal/runtime/... ./internal/cluster/... ./internal/serve/...
	$(GO) test -race -short ./internal/hefloat/ ./internal/conformance/

ci:
	sh scripts/ci.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Machine-readable kernel benchmarks: the ring, ckks and hefloat suites,
# parsed into BENCH_ring.json, BENCH_ckks.json and BENCH_hefloat.json
# (ns/op, B/op, allocs/op). EXPERIMENTS.md numbers come from this harness;
# `scripts/bench.sh smoke` is the 1-iteration CI variant.
bench-json:
	sh scripts/bench.sh

# Serving-layer load benchmark: replays the synthetic open-loop Poisson
# workload (cmd/hydra-serve) against two fleet sizes and writes jobs/sec plus
# queue-wait/latency percentiles to BENCH_serve.json.
serve-bench:
	sh scripts/bench.sh serve

# IR-compiler benchmark: per-pass ablation (naive, full, no-cse,
# no-lazy-relin, no-hoist) of keyswitch/decomposition/ModDown counts on the
# BSGS, bootstrap-C2S and ResNet-block programs, plus end-to-end
# naive-vs-optimized evaluation time, written to BENCH_compile.json. The
# -check gate inside fails if the full pipeline removes fewer than 20% of
# the naive keyswitches on any program.
compile-bench:
	sh scripts/bench.sh compile

# Short fuzz passes: the ISA task-program decoder, and the differential
# modular-arithmetic fuzzer (Barrett/Shoup/Montgomery vs math/big).
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=20s ./internal/isa/
	$(GO) test -fuzz=FuzzModularOps -fuzztime=10s -run '^$$' ./internal/ring/

# Regenerate the experiment golden snapshots after an intentional change.
golden-update:
	$(GO) test ./internal/experiments/ -run TestGolden -update

# Cross-engine conformance matrix: the full program corpus (including the
# heavy bootstrap program) against the reference, optimized, cluster, sim and
# ir engines, with every cell checked against its precision budget and the
# checked-in golden pass matrix. See DESIGN.md "Cross-engine conformance".
conformance:
	$(GO) test -count=1 -v -run TestConformanceMatrix ./internal/conformance/

# Re-bless the conformance golden matrix after intentionally growing the
# corpus or changing engine coverage. Refuses to run from a failing or
# -short (reduced) matrix. The package path must precede -update or go test
# hands the flag to the root package's test binary, which doesn't define it.
conformance-update:
	$(GO) test ./internal/conformance/ -count=1 -run TestConformanceMatrix -update
