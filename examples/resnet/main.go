// FHE ResNet inference on the Hydra prototypes: lowers the full ResNet-18
// and ResNet-50 models (multiplexed-packing implementation, Table I
// parallelism) onto Hydra-S, Hydra-M and Hydra-L, and prints the
// per-procedure timing and speedup breakdown of Fig. 6.
package main

import (
	"fmt"
	"log"

	"hydra/internal/experiments"
	"hydra/internal/model"
)

func main() {
	for _, net := range []model.Network{model.ResNet18(), model.ResNet50()} {
		fmt.Printf("== %s ==\n", net.Name)
		protos := []experiments.Prototype{
			experiments.HydraS(), experiments.HydraM(), experiments.HydraL(),
		}
		base := map[string]float64{}
		baseTotal := 0.0
		for _, p := range protos {
			res, err := p.Run(net)
			if err != nil {
				log.Fatal(err)
			}
			spans := res.StepSpanByName()
			reported := res.Makespan * p.ReportScale
			fmt.Printf("%-8s total %8.2f s (calibrated), comm share %5.2f%%\n",
				p.Name, reported, 100*res.CommShare())
			for _, label := range net.Labels() {
				line := fmt.Sprintf("  %-8s %9.3f s", label, spans[label]*p.ReportScale)
				if p.Name == "Hydra-S" {
					base[label] = spans[label]
					baseTotal = res.Makespan
				} else {
					line += fmt.Sprintf("   speedup %6.2fx", base[label]/spans[label])
				}
				fmt.Println(line)
			}
			if p.Name != "Hydra-S" {
				fmt.Printf("  %-8s %19s %6.2fx\n", "TOTAL", "", baseTotal/res.Makespan)
			}
		}
		fmt.Println()
	}
}
