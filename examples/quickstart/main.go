// Quickstart: the two halves of this repository in one program.
//
// Part 1 exercises the functional CKKS layer — encode, encrypt, add,
// multiply, rotate, decrypt — the arithmetic a Hydra card executes.
//
// Part 2 builds the scale-out schedule for a small convolution layer with
// the paper's ring-broadcast mapping (Figs. 1-2) and runs it on the
// simulated 8-card Hydra-M prototype, showing how transmission hides behind
// computation.
package main

import (
	"fmt"
	"log"

	"hydra/internal/ckks"
	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func main() {
	fmt.Println("== Part 1: CKKS arithmetic (the per-card functional layer) ==")
	params := ckks.TestParameters(12, 4) // N = 4096, 4 multiplicative levels
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, []int{1}, false)

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	xs := make([]complex128, params.Slots())
	ys := make([]complex128, params.Slots())
	for i := range xs {
		xs[i] = complex(float64(i%10)/10, 0)
		ys[i] = complex(float64(i%7)/7, 0)
	}
	ptX, err := enc.Encode(xs)
	if err != nil {
		log.Fatal(err)
	}
	ptY, err := enc.Encode(ys)
	if err != nil {
		log.Fatal(err)
	}
	ctX := encryptor.Encrypt(ptX)
	ctY := encryptor.Encrypt(ptY)

	sum := eval.Add(ctX, ctY)
	prod := eval.Rescale(eval.MulRelin(ctX, ctY))
	rot := eval.Rotate(ctX, 1)

	show := func(name string, ct *ckks.Ciphertext, want func(i int) complex128) {
		got := enc.Decode(decryptor.Decrypt(ct))
		fmt.Printf("  %-10s slot0 got %+.4f want %+.4f | slot5 got %+.4f want %+.4f\n",
			name, real(got[0]), real(want(0)), real(got[5]), real(want(5)))
	}
	show("x + y", sum, func(i int) complex128 { return xs[i] + ys[i] })
	show("x * y", prod, func(i int) complex128 { return xs[i] * ys[i] })
	show("rot(x,1)", rot, func(i int) complex128 { return xs[(i+1)%params.Slots()] })

	fmt.Println("\n== Part 2: scale-out schedule of a ConvBN layer on Hydra-M ==")
	cfg := sim.HydraConfig()
	const cards, units, outputCts = 8, 256, 8

	run := func(name string, emit func(*mapping.Context) error) *sim.Result {
		b := task.NewBuilder(cards, cards)
		ctx := mapping.NewContext(b, cfg.Scheme, cards)
		if err := emit(ctx); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(b.Build(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s makespan %7.2f ms, exposed comm %6.2f ms (%4.1f%%)\n",
			name, res.Makespan*1e3, res.ExposedComm()*1e3, 100*res.CommShare())
		return res
	}
	single := func() float64 {
		b := task.NewBuilder(1, 1)
		ctx := mapping.NewContext(b, cfg.Scheme, 1)
		if err := ctx.DistributeBroadcast(units, mapping.ConvBNUnit, outputCts, "ConvBN"); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(b.Build(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.Makespan
	}()

	ring := run("ring broadcast (paper)", func(c *mapping.Context) error {
		return c.DistributeBroadcast(units, mapping.ConvBNUnit, outputCts, "ConvBN")
	})
	run("gather + rebroadcast", func(c *mapping.Context) error {
		return c.DistributeGather(units, mapping.ConvBNUnit, outputCts, "ConvBN")
	})
	fmt.Printf("  8-card speedup with the paper's mapping: %.2fx\n", single/ring.Makespan)
}
