// Quickstart: the two halves of this repository in one program.
//
// Part 1 writes a small ciphertext program on the internal/fhir SSA IR —
// the compiler front door — runs the optimizing pass pipeline (CSE, lazy
// rescale placement, lazy relinearization, rotation hoisting), and executes
// both the naive and the optimized form on the functional CKKS layer,
// showing the keyswitch work the compiler removed.
//
// Part 2 builds the scale-out schedule for a small convolution layer with
// the paper's ring-broadcast mapping (Figs. 1-2) and runs it on the
// simulated 8-card Hydra-M prototype, showing how transmission hides behind
// computation.
package main

import (
	"fmt"
	"log"
	"sort"

	"hydra/internal/ckks"
	"hydra/internal/fhir"
	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func main() {
	fmt.Println("== Part 1: a ciphertext program on the IR (the compiler layer) ==")
	const levels = 4
	params := ckks.TestParameters(12, levels) // N = 4096, 4 multiplicative levels

	// The program: smooth = Σ_{r<3} rot(x·y + x/2, r). The builder records
	// only the mathematics; rescale placement, relinearization and rotation
	// sharing are the pass pipeline's job.
	b := fhir.NewBuilder(params.Slots())
	x, y := b.Input("x"), b.Input("y")
	t := b.Add(b.Mul(x, y), b.MulConst(x, 0.5))
	smooth := b.Sum(t, b.Rotate(t, 1), b.Rotate(t, 2))
	b.Output(smooth)
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	naive, err := fhir.CompileNaive(prog, levels)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := fhir.Compile(prog, fhir.Options{Levels: levels})
	if err != nil {
		log.Fatal(err)
	}
	nc, oc := fhir.Measure(naive), fhir.Measure(opt)
	fmt.Printf("  naive:     %d keyswitches, %d decompositions, %d rescales\n",
		nc.KeySwitch, nc.Decomp, nc.Rescale)
	fmt.Printf("  optimized: %d keyswitches, %d decompositions, %d rescales\n",
		oc.KeySwitch, oc.Decomp, oc.Rescale)

	// Key material: the union of rotations either compiled form needs.
	rotSet := map[int]bool{}
	conj := false
	for _, p := range []*fhir.Program{naive, opt} {
		rs, cj := p.Rotations()
		for _, r := range rs {
			rotSet[r] = true
		}
		conj = conj || cj
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtks := kg.GenRotationKeys(sk, rots, conj)

	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	xs := make([]complex128, params.Slots())
	ys := make([]complex128, params.Slots())
	for i := range xs {
		xs[i] = complex(float64(i%10)/10, 0)
		ys[i] = complex(float64(i%7)/7, 0)
	}
	want, err := fhir.Interpret(prog, map[string][]complex128{"x": xs, "y": ys})
	if err != nil {
		log.Fatal(err)
	}
	ctx := fhir.EvalContext{Eval: eval, Enc: enc}
	for _, run := range []struct {
		name string
		p    *fhir.Program
	}{{"naive", naive}, {"optimized", opt}} {
		inputs := map[string]*ckks.Ciphertext{}
		for n, vals := range map[string][]complex128{"x": xs, "y": ys} {
			pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), levels)
			if err != nil {
				log.Fatal(err)
			}
			inputs[n] = encryptor.Encrypt(pt)
		}
		out, err := fhir.Evaluate(run.p, ctx, inputs)
		if err != nil {
			log.Fatal(err)
		}
		got := enc.Decode(decryptor.Decrypt(out))
		fmt.Printf("  %-10s slot0 got %+.4f want %+.4f | slot5 got %+.4f want %+.4f\n",
			run.name, real(got[0]), real(want[0]), real(got[5]), real(want[5]))
	}

	fmt.Println("\n== Part 2: scale-out schedule of a ConvBN layer on Hydra-M ==")
	cfg := sim.HydraConfig()
	const cards, units, outputCts = 8, 256, 8

	run := func(name string, emit func(*mapping.Context) error) *sim.Result {
		b := task.NewBuilder(cards, cards)
		ctx := mapping.NewContext(b, cfg.Scheme, cards)
		if err := emit(ctx); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(b.Build(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s makespan %7.2f ms, exposed comm %6.2f ms (%4.1f%%)\n",
			name, res.Makespan*1e3, res.ExposedComm()*1e3, 100*res.CommShare())
		return res
	}
	single := func() float64 {
		b := task.NewBuilder(1, 1)
		ctx := mapping.NewContext(b, cfg.Scheme, 1)
		if err := ctx.DistributeBroadcast(units, mapping.ConvBNUnit, outputCts, "ConvBN"); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(b.Build(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.Makespan
	}()

	ring := run("ring broadcast (paper)", func(c *mapping.Context) error {
		return c.DistributeBroadcast(units, mapping.ConvBNUnit, outputCts, "ConvBN")
	})
	run("gather + rebroadcast", func(c *mapping.Context) error {
		return c.DistributeGather(units, mapping.ConvBNUnit, outputCts, "ConvBN")
	})
	fmt.Printf("  8-card speedup with the paper's mapping: %.2fx\n", single/ring.Makespan)
}
