// Package examples_test smoke-builds and runs the runnable examples, so a
// refactor that silently breaks a quickstart path fails CI rather than the
// next reader. Each example runs via `go run` from the module root with a
// hard timeout and is checked for a line its output contract promises.
package examples_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string, wantSubstr string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
	cmd.Dir = ".." // module root; the test binary runs in examples/
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./%s: %v\n%s", dir, err, out)
	}
	if !strings.Contains(string(out), wantSubstr) {
		t.Fatalf("go run ./%s output missing %q:\n%s", dir, wantSubstr, out)
	}
}

func TestQuickstartExample(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs are skipped in short mode")
	}
	runExample(t, "examples/quickstart", "8-card speedup with the paper's mapping")
}

func TestClusterExample(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs are skipped in short mode")
	}
	runExample(t, "examples/cluster", "bytes per ciphertext on the wire")
}

func TestBootstrapExample(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs are skipped in short mode")
	}
	runExample(t, "examples/bootstrap", "Batch bootstrapping 2 ciphertexts on 16 cards")
}

func TestLLMExample(t *testing.T) {
	t.Skip("llm example models a full transformer block and takes ~12s; " +
		"excluded from the smoke tier, run manually with `go run ./examples/llm`")
}

func TestResnetExample(t *testing.T) {
	t.Skip("resnet example sweeps a 20-layer network schedule and takes ~2s " +
		"plus build time; excluded from the smoke tier, run manually with " +
		"`go run ./examples/resnet`")
}
