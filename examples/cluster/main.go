// Functional scale-out FHE: four "cards" (goroutines with real CKKS state)
// cooperatively execute a convolution layer with the paper's ring-broadcast
// mapping and a distributed BSGS matrix-vector product, exchanging
// serialized ciphertexts over a channel switch. The decrypted results are
// checked against the single-card computation — the whole Hydra stack, from
// instruction preloading to hardware-style synchronization to CKKS
// arithmetic, running for real at laptop scale.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"hydra/internal/ckks"
	"hydra/internal/cluster"
)

func main() {
	const cards = 4
	params := ckks.TestParameters(8, 3) // N = 256, 3 levels
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rots := make([]int, 0, 16)
	for d := 1; d < 16; d++ {
		rots = append(rots, d)
	}
	rtks := kg.GenRotationKeys(sk, rots, false)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 2)
	decr := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, rlk, rtks)

	// Encrypt an activation vector.
	vals := make([]complex128, params.Slots())
	for i := range vals {
		vals[i] = complex(math.Sin(float64(i)/5), 0)
	}
	pt, err := enc.Encode(vals)
	if err != nil {
		log.Fatal(err)
	}
	ct := encr.Encrypt(pt)

	// A ConvBN-style layer: 8 kernels, each one rotation and one weight mask.
	layer := cluster.ConvLayer{Rotations: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	for k := range layer.Rotations {
		w := make([]complex128, params.Slots())
		for i := range w {
			w[i] = complex(0.05*float64(k+1), 0)
		}
		ptW, err := enc.EncodeAtLevel(w, params.DefaultScale(), ct.Level())
		if err != nil {
			log.Fatal(err)
		}
		layer.Weights = append(layer.Weights, ptW)
	}

	progs, err := cluster.BuildConv(cards, layer)
	if err != nil {
		log.Fatal(err)
	}
	cl := cluster.New(params, eval, cards)
	for c := 0; c < cards; c++ {
		cl.Load(c, "x", ct)
	}
	if err := cl.Run(context.Background(), progs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ConvBN on %d functional cards: %d kernels computed and ring-broadcast\n", cards, len(layer.Rotations))

	// Verify kernel 5 on the last card against the single-card computation.
	got, err := cl.Get(cards-1, "out5")
	if err != nil {
		log.Fatal(err)
	}
	single := eval.Rescale(eval.MulPlain(eval.Rotate(ct, 5), layer.Weights[5]))
	dGot := enc.Decode(decr.Decrypt(got))
	dWant := enc.Decode(decr.Decrypt(single))
	maxErr := 0.0
	for i := range dGot {
		if e := cmplx.Abs(dGot[i] - dWant[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("  kernel 5 on card %d matches the single-card result within %.2e\n", cards-1, maxErr)
	fmt.Printf("  bytes per ciphertext on the wire: %d\n", len(ckks.MarshalCiphertext(got)))
}
