// FHE transformer inference at scale: runs BERT-base and OPT-6.7B
// (NEXUS-style non-interactive inference) on the Hydra prototypes and the
// FAB baselines, reproducing the paper's LLM headlines — up to 88-160x over
// FAB's single card and sub-percent communication overhead on OPT-6.7B.
package main

import (
	"fmt"
	"log"

	"hydra/internal/experiments"
	"hydra/internal/model"
)

func main() {
	protos := []experiments.Prototype{
		experiments.FABS(), experiments.Poseidon(), experiments.FABM(),
		experiments.HydraS(), experiments.HydraM(), experiments.HydraL(),
	}
	for _, net := range []model.Network{model.BERTBase(), model.OPT67B()} {
		fmt.Printf("== %s ==\n", net.Name)
		times := map[string]float64{}
		for _, p := range protos {
			res, err := p.Run(net)
			if err != nil {
				log.Fatal(err)
			}
			reported := res.Makespan * p.ReportScale
			times[p.Name] = reported
			fmt.Printf("%-9s %10.2f s   comm share %5.2f%%   energy %7.1f kJ\n",
				p.Name, reported, 100*res.CommShare(), res.TotalEnergy()/1e3)
		}
		fmt.Printf("Hydra-L speedup: %6.1fx over FAB-S, %5.1fx over Poseidon, %5.2fx over FAB-M\n\n",
			times["FAB-S"]/times["Hydra-L"],
			times["Poseidon"]/times["Hydra-L"],
			times["FAB-M"]/times["Hydra-L"])
	}
}
