// Bootstrapping deep-dive: tunes the DFT parameters of CoeffToSlot /
// SlotToCoeff with the Eq. 1 model (Radix vs bs vs gs, Table V), then builds
// and simulates a cooperative multi-card bootstrap, comparing the paper's
// design choices against their ablations: tree vs star aggregation of the
// giant-step partial sums, and uniform vs distributed baby steps.
package main

import (
	"fmt"
	"log"

	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func main() {
	cfg := sim.HydraConfig()
	const cards = 8
	ctBytes := float64(cfg.Scheme.CiphertextBytes(25))
	com := cfg.Network.TransferTime(ctBytes, 0, 1, cards)
	times := mapping.OpTimesFor(cfg.Card, cfg.Scheme, 25, com)

	fmt.Println("== Eq. 1 parameter search (logSlots 15, 3 DFT levels) ==")
	for _, n := range []int{1, 8, 64} {
		t := times
		if n == 1 {
			t.Com = 0
		}
		params, total, err := mapping.OptimizeDFT(15, 3, n, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d cards: Radix=%v bs=%v, one DFT pass %7.2f ms\n",
			n, params.Radix, params.BS, total*1e3)
	}

	fmt.Println("\n== One cooperative bootstrap on 8 cards ==")
	opts := mapping.DefaultBootstrapOptions(cfg.Scheme, cards, times)
	run := func(name string, mutate func(*mapping.MatVecOptions)) {
		b := task.NewBuilder(cards, cards)
		ctx := mapping.NewContext(b, cfg.Scheme, cards)
		ctx.Limbs = opts.Limbs
		// Emit the C2S levels with the requested aggregation variant, then
		// the rest of the pipeline unmodified.
		for i := range opts.DFT.Radix {
			mv := mapping.MatVecOptions{BS: opts.DFT.BS[i], GS: 2 * opts.DFT.Radix[i] / opts.DFT.BS[i]}
			mutate(&mv)
			if err := ctx.MatVec(mv, "C2S"); err != nil {
				log.Fatal(err)
			}
		}
		if err := ctx.PolyEval(opts.EvaExpDeg, "EvaExp"); err != nil {
			log.Fatal(err)
		}
		for i := range opts.DFT.Radix {
			mv := mapping.MatVecOptions{BS: opts.DFT.BS[i], GS: 2 * opts.DFT.Radix[i] / opts.DFT.BS[i]}
			mutate(&mv)
			if err := ctx.MatVec(mv, "S2C"); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sim.Run(b.Build(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8.2f ms (exposed comm %6.2f ms)\n",
			name, res.Makespan*1e3, res.ExposedComm()*1e3)
	}
	run("paper: tree + uniform bs", func(*mapping.MatVecOptions) {})
	run("ablation: star aggregation", func(m *mapping.MatVecOptions) { m.StarAggregation = true })
	run("ablation: distributed bs", func(m *mapping.MatVecOptions) { m.DistributedBS = true })

	fmt.Println("\n== Batch bootstrapping 2 ciphertexts on 16 cards (split groups) ==")
	b := task.NewBuilder(16, 8)
	ctx := mapping.NewContext(b, cfg.Scheme, 16)
	if err := ctx.BootstrapBatch(2, opts, times, "Boot"); err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(b.Build(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  2 bootstraps across 2x8-card groups: %.2f ms, %s\n",
		res.Makespan*1e3, res.OpTotals)
}
