#!/bin/sh
# CI gate for the limb-parallel execution layer: vet everything, then run the
# concurrency-bearing packages (the worker pool, the evaluator that fans limb
# work onto it, and the goroutine-card runtimes that nest it) under the race
# detector. The ckks package includes the parallel-vs-serial differential
# harness, so this also proves bit-identical results under -race scheduling.
#
# Usage: scripts/ci.sh [extra go-test flags]
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== hydra-lint (FHE + concurrency invariants)"
# Tree-wide run in JSON mode, against a wall-clock budget: the SSA-lite
# engine re-analyzes function bodies per summary probe, so a runtime blowup
# is a regression in its own right. The budget is generous next to the ~5s
# steady state; dataflow accidentally going super-linear blows well past it.
LINT_START="$(date +%s)"
LINT_JSON="$(mktemp)"
LINT_BIN="$(mktemp -d)/hydra-lint"
go build -o "$LINT_BIN" ./cmd/hydra-lint
LINT_STATUS=0
"$LINT_BIN" -json ./... >"$LINT_JSON" || LINT_STATUS=$?
LINT_ELAPSED=$(( $(date +%s) - LINT_START ))
echo "-- findings per check (suppressed included), ${LINT_ELAPSED}s tree-wide"
sed -n 's/.*"check":"\([a-z]*\)".*/\1/p' "$LINT_JSON" | sort | uniq -c | sort -rn
if [ "$LINT_STATUS" -ne 0 ]; then
	echo "ci: hydra-lint findings:" >&2
	grep '"suppressed":false' "$LINT_JSON" >&2 || true
	rm -f "$LINT_JSON" "$LINT_BIN"
	exit "$LINT_STATUS"
fi
rm -f "$LINT_JSON" "$LINT_BIN"
if [ "$LINT_ELAPSED" -gt 120 ]; then
	echo "ci: hydra-lint tree-wide run took ${LINT_ELAPSED}s (budget 120s)" >&2
	exit 1
fi

echo "== hydra-lint self-check (the linter's own code must be clean)"
go run ./cmd/hydra-lint ./internal/lint/... ./cmd/...

echo "== generated-kernel freshness (go generate ./... must be a no-op)"
# The specialized NTT kernels in internal/ring/ntt_gen.go are emitted by
# cmd/hydra-genkernels from the shipped parameter list; a checked-in copy
# that drifts from what the generator emits means someone edited generated
# code by hand or changed the generator without regenerating.
go generate ./...
if ! git diff --exit-code -- '*.go'; then
	echo "ci: generated code is stale: run 'go generate ./...' and commit the result" >&2
	exit 1
fi

echo "== go test -race (pool + evaluator + runtimes + serving layer)"
go test -race "$@" \
	./internal/ring/... \
	./internal/ckks/... \
	./internal/runtime/... \
	./internal/cluster/... \
	./internal/serve/...

echo "== go test -race -short (plan cache + double-hoisted BSGS)"
# The hefloat suite includes the concurrent shared-plan and the
# parallel-vs-serial plan differential; -short skips the slow bootstrap
# convergence tests that add nothing to the race coverage.
go test -race -short "$@" ./internal/hefloat/

echo "== go test -race -short (conformance reduced matrix)"
# The cross-engine matrix minus the heavy bootstrap program: every remaining
# program still runs on all five engines, with the cluster engine exercising
# the goroutine-card runtime under the race detector.
go test -race -short "$@" ./internal/conformance/

echo "== go test (full tier-1 suite)"
go test ./...

echo "== conformance matrix (full corpus x 5 engines, golden-checked)"
# Fails on any cell outside its program's precision budget and on any
# regression against testdata/golden_matrix.json.
go test -count=1 -run TestConformanceMatrix ./internal/conformance/

echo "== compiler (IR pass-ablation gate + differential fuzz smoke)"
# The ablation gate compiles the three benchmark programs (BSGS dense
# matvec, bootstrap C2S, ResNet block) under every pass configuration and
# fails if the full pipeline removes fewer than 20% of the naive keyswitch
# operations on any of them; the fuzzer differentially checks random IR
# programs (interpreter: optimized vs naive compile) for 10 seconds.
COMPILE_DIR="$(mktemp -d)"
go run ./cmd/hydra-compile -check -out "$COMPILE_DIR/BENCH_compile.json"
rm -rf "$COMPILE_DIR"
go test -fuzz=FuzzIRPasses -fuzztime=10s -run '^$' ./internal/fhir/

echo "== fuzz smoke (seed corpora + 10s per fuzzer)"
# Short differential-fuzz passes seeded from testdata/fuzz: the modular
# arithmetic kernels against math/big, and the ISA decoder against crashes.
go test -fuzz=FuzzModularOps -fuzztime=10s -run '^$' ./internal/ring/
go test -fuzz=FuzzUnmarshal -fuzztime=10s -run '^$' ./internal/isa/

echo "== bench harness smoke (1 iteration per benchmark)"
# Write to a scratch directory: the smoke run validates the harness and the
# JSON writers for all four suites without clobbering the checked-in
# measured BENCH_*.json files.
SMOKE_DIR="$(mktemp -d)"
BENCH_DIR="$SMOKE_DIR" sh scripts/bench.sh smoke >/dev/null
for f in BENCH_ring.json BENCH_ckks.json BENCH_hefloat.json BENCH_sched.json BENCH_compile.json BENCH_serve.json; do
	[ -s "$SMOKE_DIR/$f" ] || { echo "ci: bench smoke did not write $f" >&2; exit 1; }
done
rm -rf "$SMOKE_DIR"

echo "== hydra-serve smoke (1-second 1024-card open-loop load, -race)"
# Drives the live serving layer end to end at fleet scale — batched admission,
# heap dispatch, bitmap card allocation, continuous batching, drain — under
# the race detector, with a short synthetic Poisson replay; validates the
# report writer without clobbering the checked-in measured BENCH_serve.json.
SERVE_DIR="$(mktemp -d)"
go run -race ./cmd/hydra-serve -mode live -fleets 1024 -rate 300 -duration 1s \
	-dilation 0.05 -coalesce 8 -queue 2048 -out "$SERVE_DIR/BENCH_serve.json"
[ -s "$SERVE_DIR/BENCH_serve.json" ] || { echo "ci: hydra-serve smoke wrote no report" >&2; exit 1; }
rm -rf "$SERVE_DIR"

echo "ci: OK"
