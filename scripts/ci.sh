#!/bin/sh
# CI gate for the limb-parallel execution layer: vet everything, then run the
# concurrency-bearing packages (the worker pool, the evaluator that fans limb
# work onto it, and the goroutine-card runtimes that nest it) under the race
# detector. The ckks package includes the parallel-vs-serial differential
# harness, so this also proves bit-identical results under -race scheduling.
#
# Usage: scripts/ci.sh [extra go-test flags]
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== hydra-lint (FHE + concurrency invariants)"
go run ./cmd/hydra-lint ./...

echo "== go test -race (pool + evaluator + runtimes)"
go test -race "$@" \
	./internal/ring/... \
	./internal/ckks/... \
	./internal/runtime/... \
	./internal/cluster/...

echo "== go test (full tier-1 suite)"
go test ./...

echo "== bench harness smoke (1 iteration per benchmark)"
# Write to a scratch path: the smoke run validates the harness and the JSON
# writer without clobbering the checked-in measured BENCH_ring.json.
BENCH_OUT="$(mktemp)" sh scripts/bench.sh smoke >/dev/null

echo "ci: OK"
