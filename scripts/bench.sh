#!/bin/sh
# Kernel benchmark harness: runs the serial/parallel ring + ckks benchmark
# pairs (NTT kernel generations, fused MAC, CMult/relinearization, hoisted
# rotations) and emits the parsed results as machine-readable JSON with
# ns/op, B/op and allocs/op per benchmark. EXPERIMENTS.md tables are derived
# from this output.
#
# Usage: scripts/bench.sh [smoke]
#   smoke    run every benchmark for a single iteration (-benchtime=1x):
#            the CI gate that keeps the harness and the JSON writer working
#            without paying full measurement time.
#
# Environment:
#   BENCH_OUT    output path (default BENCH_ring.json at the repo root)
#   BENCHTIME    go test -benchtime value (default 1s; smoke forces 1x)
set -eu

cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_ring.json}
BENCHTIME=${BENCHTIME:-1s}
if [ "${1:-}" = "smoke" ]; then
	BENCHTIME=1x
fi

PATTERN='^(BenchmarkNTT|BenchmarkINTT|BenchmarkMulCoeffsAdd|BenchmarkCMultRelin|BenchmarkCMultParallel|BenchmarkRotationsDirect|BenchmarkRotationsHoisted)'

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
	./internal/ring/ ./internal/ckks/ | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bop = ""; aop = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		else if ($i == "B/op") bop = $(i-1)
		else if ($i == "allocs/op") aop = $(i-1)
	}
	if (ns == "") next
	entry = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (bop != "") entry = entry sprintf(", \"bytes_per_op\": %s", bop)
	if (aop != "") entry = entry sprintf(", \"allocs_per_op\": %s", aop)
	entry = entry "}"
	entries[n++] = entry
}
END {
	print "{"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++)
		printf "%s%s\n", entries[i], (i < n-1 ? "," : "")
	print "  ]"
	print "}"
}
' "$RAW" >"$OUT"

echo "bench: wrote $(grep -c '"name"' "$OUT") results to $OUT"
