#!/bin/sh
# Kernel benchmark harness: runs the serial/parallel ring, ckks and hefloat
# benchmark suites (NTT kernel generations, fused MAC, CMult/relinearization,
# hoisted and double-hoisted rotations, BSGS linear transforms, PCMM/CCMM and
# the small bootstrap) and emits the parsed results as machine-readable JSON
# with ns/op, B/op and allocs/op per benchmark — one file per package layer:
#
#   BENCH_ring.json     NTT/INTT generations, fused coefficient MAC
#   BENCH_ckks.json     CMult/relin, direct vs hoisted vs ext-hoisted rotations
#   BENCH_hefloat.json  naive/BSGS/reference linear transforms, PCMM(+compiled),
#                       CCMM, BootstrapSmall serial+parallel
#
# EXPERIMENTS.md tables are derived from this output.
#
# Usage: scripts/bench.sh [smoke]
#   smoke    run every benchmark for a single iteration (-benchtime=1x):
#            the CI gate that keeps the harness and the JSON writer working
#            without paying full measurement time.
#
# Environment:
#   BENCH_DIR    output directory (default: repo root)
#   BENCHTIME    go test -benchtime value (default 1s; smoke forces 1x)
set -eu

cd "$(dirname "$0")/.."

BENCH_DIR=${BENCH_DIR:-.}
BENCHTIME=${BENCHTIME:-1s}
if [ "${1:-}" = "smoke" ]; then
	BENCHTIME=1x
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# run_suite <pattern> <package> <output-json>
run_suite() {
	PATTERN=$1
	PKG=$2
	OUT=$3

	go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
		"$PKG" | tee "$RAW"

	awk -v benchtime="$BENCHTIME" '
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bop = ""; aop = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		else if ($i == "B/op") bop = $(i-1)
		else if ($i == "allocs/op") aop = $(i-1)
	}
	if (ns == "") next
	entry = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (bop != "") entry = entry sprintf(", \"bytes_per_op\": %s", bop)
	if (aop != "") entry = entry sprintf(", \"allocs_per_op\": %s", aop)
	entry = entry "}"
	entries[n++] = entry
}
END {
	print "{"
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++)
		printf "%s%s\n", entries[i], (i < n-1 ? "," : "")
	print "  ]"
	print "}"
}
' "$RAW" >"$OUT"

	echo "bench: wrote $(grep -c '"name"' "$OUT") results to $OUT"
}

run_suite \
	'^(BenchmarkNTT|BenchmarkINTT|BenchmarkMulCoeffsAdd)' \
	./internal/ring/ "$BENCH_DIR/BENCH_ring.json"

run_suite \
	'^(BenchmarkCMultRelin|BenchmarkCMultParallel|BenchmarkRotationsDirect|BenchmarkRotationsHoisted)' \
	./internal/ckks/ "$BENCH_DIR/BENCH_ckks.json"

run_suite \
	'^(BenchmarkLinearTransform|BenchmarkPCMM|BenchmarkCCMM|BenchmarkBootstrapSmall)' \
	./internal/hefloat/ "$BENCH_DIR/BENCH_hefloat.json"
