#!/bin/sh
# Kernel benchmark harness: runs the serial/parallel ring, ckks and hefloat
# benchmark suites (NTT kernel generations, fused MAC, CMult/relinearization,
# hoisted and double-hoisted rotations, BSGS linear transforms, PCMM/CCMM and
# the small bootstrap) and emits the parsed results as machine-readable JSON
# with ns/op, B/op and allocs/op per benchmark — one file per package layer:
#
#   BENCH_ring.json     NTT/INTT generations, fused coefficient MAC
#   BENCH_ckks.json     CMult/relin, direct vs hoisted vs ext-hoisted rotations
#   BENCH_hefloat.json  naive/BSGS/reference linear transforms, PCMM(+compiled),
#                       CCMM, BootstrapSmall serial+parallel
#   BENCH_sched.json    scheduler hot-path microbenchmarks: indexed heap/bitmap
#                       popFit + allocateCards vs their linear-scan baselines
#   BENCH_compile.json  IR-compiler pass ablation (cmd/hydra-compile):
#                       keyswitch/decomposition/ModDown counts per pass
#                       configuration per program, plus naive-vs-optimized
#                       end-to-end evaluation time
#   BENCH_serve.json    serving-layer saturation sweep (cmd/hydra-serve -mode
#                       sweep): jobs/sec, utilization and wait percentiles per
#                       fleet size per offered load, with the per-job-grant
#                       coalescing ablation per point
#
# EXPERIMENTS.md tables are derived from this output.
#
# Usage: scripts/bench.sh [smoke|serve]
#   smoke    run every benchmark for a single iteration (-benchtime=1x) and
#            the serve replay with a 1-second horizon: the CI gate that keeps
#            the harness and the JSON writers working without paying full
#            measurement time.
#   serve    run only the serving-layer load replay (the `make serve-bench`
#            entry point).
#   compile  run only the IR-compiler benchmark (the `make compile-bench`
#            entry point): per-pass ablation of keyswitch/decomposition/
#            ModDown counts plus end-to-end naive-vs-optimized evaluation
#            time, written to BENCH_compile.json.
#
# Environment:
#   BENCH_DIR    output directory (default: repo root)
#   BENCHTIME    go test -benchtime value (default 1s; smoke forces 1x)
set -eu

cd "$(dirname "$0")/.."

BENCH_DIR=${BENCH_DIR:-.}
BENCHTIME=${BENCHTIME:-1s}
SUITE=all
# Provenance header stamped into every BENCH_*.json: the commit the numbers
# were measured at and the UTC wall time of the run. hydra-serve picks the
# same values up from the environment so all four files agree.
GIT_SHA=${BENCH_GIT_SHA:-$(git rev-parse HEAD 2>/dev/null || echo unknown)}
UTC_TIME=${BENCH_UTC_TIME:-$(date -u +%Y-%m-%dT%H:%M:%SZ)}
export BENCH_GIT_SHA="$GIT_SHA" BENCH_UTC_TIME="$UTC_TIME"
# Measured defaults: the virtual-time saturation sweep over four fleet sizes
# spanning one server to 128 servers, 10^4 offered jobs per point, five
# offered loads bracketing the knee, continuous batching at 8 with the
# per-job-grant ablation recorded alongside every point.
SERVE_ARGS="-mode sweep -fleets 8,64,256,1024 -jobs 10000 -loads 0.25,0.5,0.75,1.0,1.25 -coalesce 8 -ablate -seed 1"
case "${1:-}" in
smoke)
	BENCHTIME=1x
	SERVE_ARGS="-mode sweep -fleets 8,16 -jobs 500 -loads 0.5,1.0 -coalesce 8 -seed 1"
	;;
serve)
	SUITE=serve
	;;
compile)
	SUITE=compile
	;;
esac

run_serve() {
	go run ./cmd/hydra-serve $SERVE_ARGS -out "$BENCH_DIR/BENCH_serve.json"
	echo "bench: wrote $(grep -c '"cards":' "$BENCH_DIR/BENCH_serve.json") fleet reports to $BENCH_DIR/BENCH_serve.json"
}

run_compile() {
	go run ./cmd/hydra-compile -check -out "$BENCH_DIR/BENCH_compile.json"
}

if [ "$SUITE" = "serve" ]; then
	run_serve
	exit 0
fi
if [ "$SUITE" = "compile" ]; then
	run_compile
	exit 0
fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# run_suite <pattern> <package> <output-json>
run_suite() {
	PATTERN=$1
	PKG=$2
	OUT=$3

	go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
		"$PKG" | tee "$RAW"

	awk -v benchtime="$BENCHTIME" -v gitsha="$GIT_SHA" -v utctime="$UTC_TIME" '
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bop = ""; aop = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		else if ($i == "B/op") bop = $(i-1)
		else if ($i == "allocs/op") aop = $(i-1)
	}
	if (ns == "") next
	entry = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (bop != "") entry = entry sprintf(", \"bytes_per_op\": %s", bop)
	if (aop != "") entry = entry sprintf(", \"allocs_per_op\": %s", aop)
	entry = entry "}"
	entries[n++] = entry
}
END {
	print "{"
	printf "  \"git_sha\": \"%s\",\n", gitsha
	printf "  \"utc_time\": \"%s\",\n", utctime
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++)
		printf "%s%s\n", entries[i], (i < n-1 ? "," : "")
	print "  ]"
	print "}"
}
' "$RAW" >"$OUT"

	echo "bench: wrote $(grep -c '"name"' "$OUT") results to $OUT"
}

run_suite \
	'^(BenchmarkNTT|BenchmarkINTT|BenchmarkMulCoeffsAdd)' \
	./internal/ring/ "$BENCH_DIR/BENCH_ring.json"

run_suite \
	'^(BenchmarkCMultRelin|BenchmarkCMultParallel|BenchmarkRotationsDirect|BenchmarkRotationsHoisted|BenchmarkKeySwitch)' \
	./internal/ckks/ "$BENCH_DIR/BENCH_ckks.json"

run_suite \
	'^(BenchmarkLinearTransform|BenchmarkPCMM|BenchmarkCCMM|BenchmarkBootstrapSmall)' \
	./internal/hefloat/ "$BENCH_DIR/BENCH_hefloat.json"

run_suite \
	'^(BenchmarkPopFit|BenchmarkAllocateCards)' \
	./internal/serve/ "$BENCH_DIR/BENCH_sched.json"

run_compile

run_serve
