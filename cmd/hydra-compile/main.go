// hydra-compile is the IR-compiler benchmark: it builds the paper's two
// keyswitch-heavy program shapes (BSGS linear transforms and the chained-DFT
// CoeffToSlot stage of bootstrapping) plus a ResNet-style block on the
// internal/fhir IR, compiles each with the full pass pipeline and with each
// optimization pass ablated in turn, and reports the static cost model
// (keyswitches, decompositions, ModDowns, rescales) per variant together
// with wall-clock compile time and, for the evaluable programs, the measured
// end-to-end naive-vs-optimized evaluation time on real ciphertexts.
//
// The output is BENCH_compile.json with the same provenance header as the
// kernel benchmark files (commit SHA + UTC time, from BENCH_GIT_SHA /
// BENCH_UTC_TIME when scripts/bench.sh exports them).
//
// With -check the tool exits non-zero unless hoisting-reuse + CSE remove at
// least the target share of keyswitch operations (default 20%) on the BSGS
// and CoeffToSlot-shaped programs — the compiler's headline acceptance bar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"hydra/internal/ckks"
	"hydra/internal/fhir"
)

type variantReport struct {
	Name      string  `json:"name"`
	KeySwitch int     `json:"keyswitch"`
	Decomp    int     `json:"decomp"`
	ModDown   int     `json:"moddown"`
	Rescale   int     `json:"rescale"`
	PMult     int     `json:"pmult"`
	Values    int     `json:"values"`
	CompileMs float64 `json:"compile_ms"`
}

type programReport struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Slots       int             `json:"slots"`
	Levels      int             `json:"levels"`
	Variants    []variantReport `json:"variants"`
	// KeySwitchReductionPct is naive → fully optimized, the headline number.
	KeySwitchReductionPct float64 `json:"keyswitch_reduction_pct"`
	// RotationsMerged counts rotation keyswitches that ended up inside a
	// shared-decomposition group in the fully optimized program (extended-
	// basis baskets and rotation sums, plus tier-A hoist groups).
	RotationsMerged int `json:"rotations_merged"`
	// DecompsSaved is the digit-decomposition count hoisting removes
	// (no-hoist variant minus full pipeline).
	DecompsSaved int `json:"decomps_saved"`
	// ModDownsSaved is the runtime ModDown count the extended-basis fusions
	// avoid relative to the naive compilation.
	ModDownsSaved int `json:"moddowns_saved"`
	// ValuesCSERemoved counts IR values common-subexpression elimination
	// deleted (no-cse minus full pipeline).
	ValuesCSERemoved int     `json:"values_cse_removed"`
	EvalNaiveMs      float64 `json:"eval_naive_ms,omitempty"`
	EvalOptimizedMs  float64 `json:"eval_optimized_ms,omitempty"`
}

type report struct {
	GitSHA   string          `json:"git_sha"`
	UTCTime  string          `json:"utc_time"`
	GOOS     string          `json:"goos"`
	GOARCH   string          `json:"goarch"`
	Programs []programReport `json:"programs"`
}

// benchProgram is one benchmark shape: a builder thunk plus the level budget
// it compiles under and whether the end-to-end evaluation timing runs.
type benchProgram struct {
	name, desc string
	levels     int
	logN       int
	evaluate   bool
	checked    bool // participates in the -check reduction gate
	build      func(slots int) (*fhir.Program, error)
}

func main() {
	out := flag.String("out", "BENCH_compile.json", "output JSON path")
	check := flag.Bool("check", false, "fail unless the checked programs hit the keyswitch-reduction target")
	target := flag.Float64("target", 20, "required keyswitch reduction percent for -check")
	flag.Parse()

	programs := []benchProgram{
		{
			name:     "bsgs-dense",
			desc:     "dense 16x16 BSGS linear transform (bs=gs=4), every diagonal non-zero",
			levels:   3,
			logN:     5,
			evaluate: true,
			checked:  true,
			build: func(slots int) (*fhir.Program, error) {
				return buildBSGS(slots, 4, 4, 1, "m")
			},
		},
		{
			name:     "bootstrap-c2s",
			desc:     "CoeffToSlot-shaped chain: two stacked dense BSGS stages (the DFT factor chain)",
			levels:   4,
			logN:     5,
			evaluate: false,
			checked:  true,
			build: func(slots int) (*fhir.Program, error) {
				return buildBSGS(slots, 4, 4, 2, "dft")
			},
		},
		{
			name:     "resnet-block",
			desc:     "ResNet-style block: BSGS conv, degree-3 activation, skip connection",
			levels:   6,
			logN:     5,
			evaluate: true,
			build:    buildResNetBlock,
		},
	}

	rep := report{
		GitSHA:  provenance("BENCH_GIT_SHA", gitSHA),
		UTCTime: provenance("BENCH_UTC_TIME", func() string { return time.Now().UTC().Format(time.RFC3339) }),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
	}
	failed := false
	for _, bp := range programs {
		pr, err := benchOne(bp)
		if err != nil {
			log.Fatalf("hydra-compile: %s: %v", bp.name, err)
		}
		rep.Programs = append(rep.Programs, *pr)
		line := fmt.Sprintf("%-14s keyswitch %d -> %d (%.0f%% reduction), %d rotations merged, %d ModDowns saved",
			pr.Name, pr.Variants[0].KeySwitch, pr.Variants[1].KeySwitch,
			pr.KeySwitchReductionPct, pr.RotationsMerged, pr.ModDownsSaved)
		if pr.EvalOptimizedMs > 0 {
			line += fmt.Sprintf(", eval %.1fms -> %.1fms", pr.EvalNaiveMs, pr.EvalOptimizedMs)
		}
		fmt.Println(line)
		if *check && bp.checked && pr.KeySwitchReductionPct < *target {
			fmt.Fprintf(os.Stderr, "hydra-compile: %s: keyswitch reduction %.1f%% below the %.0f%% target\n",
				pr.Name, pr.KeySwitchReductionPct, *target)
			failed = true
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hydra-compile: wrote %d program reports to %s\n", len(rep.Programs), *out)
	if failed {
		os.Exit(1)
	}
}

func benchOne(bp benchProgram) (*programReport, error) {
	slots := 1 << (bp.logN - 1)
	src, err := bp.build(slots)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts *fhir.Options // nil = CompileNaive
	}{
		{"naive", nil},
		{"full", &fhir.Options{Levels: bp.levels}},
		{"no-cse", &fhir.Options{Levels: bp.levels, DisableCSE: true}},
		{"no-lazy-relin", &fhir.Options{Levels: bp.levels, DisableLazyRelin: true}},
		{"no-hoist", &fhir.Options{Levels: bp.levels, DisableHoist: true}},
	}
	pr := &programReport{Name: bp.name, Description: bp.desc, Slots: slots, Levels: bp.levels}
	compiled := map[string]*fhir.Program{}
	for _, v := range variants {
		start := time.Now()
		var p *fhir.Program
		if v.opts == nil {
			p, err = fhir.CompileNaive(src, bp.levels)
		} else {
			p, err = fhir.Compile(src, *v.opts)
		}
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.name, err)
		}
		elapsed := time.Since(start)
		c := fhir.Measure(p)
		compiled[v.name] = p
		pr.Variants = append(pr.Variants, variantReport{
			Name: v.name, KeySwitch: c.KeySwitch, Decomp: c.Decomp, ModDown: c.ModDown,
			Rescale: c.Rescale, PMult: c.PMult, Values: c.Values,
			CompileMs: float64(elapsed.Microseconds()) / 1e3,
		})
	}
	naive, full := pr.Variants[0], pr.Variants[1]
	if naive.KeySwitch > 0 {
		pr.KeySwitchReductionPct = 100 * float64(naive.KeySwitch-full.KeySwitch) / float64(naive.KeySwitch)
	}
	for _, v := range pr.Variants {
		switch v.Name {
		case "no-hoist":
			pr.DecompsSaved = v.Decomp - full.Decomp
		case "no-cse":
			pr.ValuesCSERemoved = v.Values - full.Values
		}
	}
	pr.RotationsMerged = countMergedRotations(compiled["full"])
	pr.ModDownsSaved = naive.ModDown - full.ModDown

	if bp.evaluate {
		nms, oms, err := evaluatePair(bp, compiled["naive"], compiled["full"])
		if err != nil {
			return nil, fmt.Errorf("end-to-end evaluation: %w", err)
		}
		pr.EvalNaiveMs, pr.EvalOptimizedMs = nms, oms
	}
	return pr, nil
}

// countMergedRotations counts the rotations of the optimized program that
// share a digit decomposition with at least one other rotation: the members
// of extended-basis baskets and rotation sums, and the standalone rotations
// the tier-A pass grouped (non-zero Hoist id).
func countMergedRotations(p *fhir.Program) int {
	n := 0
	for _, v := range p.Values {
		switch v.Op {
		case fhir.OpRotBasket, fhir.OpRotSum:
			for _, r := range v.Rots {
				if r != 0 {
					n++
				}
			}
		case fhir.OpRotate:
			if v.Hoist != 0 {
				n++
			}
		}
	}
	return n
}

// evaluatePair times one naive and one optimized execution on real
// ciphertexts under a deterministic key set, checking both against the exact
// interpreter so a timing win can never hide a wrong result.
func evaluatePair(bp benchProgram, naive, opt *fhir.Program) (naiveMs, optMs float64, err error) {
	params := ckks.TestParameters(bp.logN, bp.levels)
	rotSet := map[int]bool{}
	conj := false
	for _, p := range []*fhir.Program{naive, opt} {
		rs, cj := p.Rotations()
		for _, r := range rs {
			rotSet[r] = true
		}
		conj = conj || cj
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	sort.Ints(rots)
	kg := ckks.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptor(params, pk, 2)
	decryptor := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, kg.GenRelinearizationKey(sk), kg.GenRotationKeys(sk, rots, conj))

	plainIn := map[string][]complex128{}
	for _, in := range opt.Inputs() {
		vals := make([]complex128, opt.Slots)
		for i := range vals {
			vals[i] = complex(0.4*math.Cos(float64(3*i+1)), 0)
		}
		plainIn[in.Name] = vals
	}
	want, err := fhir.Interpret(opt, plainIn)
	if err != nil {
		return 0, 0, err
	}
	ctx := fhir.EvalContext{Eval: eval, Enc: enc}
	timeOne := func(p *fhir.Program) (float64, error) {
		inputs := map[string]*ckks.Ciphertext{}
		for name, vals := range plainIn {
			pt, err := enc.EncodeAtLevel(vals, params.DefaultScale(), bp.levels)
			if err != nil {
				return 0, err
			}
			inputs[name] = encryptor.Encrypt(pt)
		}
		start := time.Now()
		out, err := fhir.Evaluate(p, ctx, inputs)
		if err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		got := enc.Decode(decryptor.Decrypt(out))
		maxErr := 0.0
		for i := range want {
			re, im := real(got[i]-want[i]), imag(got[i]-want[i])
			if e := math.Hypot(re, im); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-2 {
			return 0, fmt.Errorf("max slot error %.3g against the interpreter", maxErr)
		}
		return float64(elapsed.Microseconds()) / 1e3, nil
	}
	if naiveMs, err = timeOne(naive); err != nil {
		return 0, 0, fmt.Errorf("naive: %w", err)
	}
	if optMs, err = timeOne(opt); err != nil {
		return 0, 0, fmt.Errorf("optimized: %w", err)
	}
	return naiveMs, optMs, nil
}

// buildBSGS writes `stages` chained dense BSGS linear transforms (every
// baby-step rotation re-emitted per giant step, exactly what the hoisting
// pass is for). Diagonal values are deterministic smooth vectors scaled so
// chained stages keep O(1) slot magnitudes.
func buildBSGS(slots, bs, gs, stages int, keyPrefix string) (*fhir.Program, error) {
	b := fhir.NewBuilder(slots)
	x := b.Input("x")
	cur := x
	for s := 0; s < stages; s++ {
		var acc *fhir.Value
		for g := 0; g < gs; g++ {
			var inner *fhir.Value
			for j := 0; j < bs; j++ {
				key := fmt.Sprintf("%s%d:%d:%d", keyPrefix, s, g, j)
				vals := make([]complex128, slots)
				for t := range vals {
					vals[t] = complex(math.Cos(float64(g*bs+j+3*t))/float64(bs*gs), 0)
				}
				term := b.MulPlain(b.Rotate(cur, j), b.PlainVec(key, vals))
				if inner == nil {
					inner = term
				} else {
					inner = b.Add(inner, term)
				}
			}
			rotated := b.Rotate(inner, g*bs)
			if acc == nil {
				acc = rotated
			} else {
				acc = b.Add(acc, rotated)
			}
		}
		cur = acc
	}
	b.Output(cur)
	return b.Build()
}

// buildResNetBlock writes y = act(W·x) + x with a dense BSGS weight
// transform and a degree-3 Horner activation — the FHE shape of one
// convolution + activation + skip connection.
func buildResNetBlock(slots int) (*fhir.Program, error) {
	b := fhir.NewBuilder(slots)
	x := b.Input("x")
	const bs, gs = 4, 4
	var conv *fhir.Value
	for g := 0; g < gs; g++ {
		var inner *fhir.Value
		for j := 0; j < bs; j++ {
			vals := make([]complex128, slots)
			for t := range vals {
				vals[t] = complex(math.Sin(float64(g*bs+j+2*t))/float64(bs*gs), 0)
			}
			term := b.MulPlain(b.Rotate(x, j), b.PlainVec(fmt.Sprintf("w:%d:%d", g, j), vals))
			if inner == nil {
				inner = term
			} else {
				inner = b.Add(inner, term)
			}
		}
		rotated := b.Rotate(inner, g*bs)
		if conv == nil {
			conv = rotated
		} else {
			conv = b.Add(conv, rotated)
		}
	}
	// Degree-3 polynomial activation by Horner: ((c3·u + c2)·u + c1)·u + c0.
	coeffs := []float64{0, 0.5, 0.25, -0.125}
	act := b.AddConst(b.MulConst(conv, coeffs[3]), coeffs[2])
	for i := 1; i >= 0; i-- {
		act = b.AddConst(b.Mul(act, conv), coeffs[i])
	}
	b.Output(b.Add(act, x))
	return b.Build()
}

// provenance prefers the environment value bench.sh exports so every
// BENCH_*.json of one run agrees, falling back to computing it here.
func provenance(env string, fallback func() string) string {
	if v := os.Getenv(env); v != "" {
		return v
	}
	return fallback()
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
