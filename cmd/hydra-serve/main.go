// Command hydra-serve drives synthetic inference workloads against the
// multi-tenant serving layer (internal/serve) and reports throughput and
// latency percentiles per fleet size. Three workload modes:
//
//   - live (default): real-time open-loop replay against the live Server —
//     jobs arrive per a Poisson process at -rate jobs/s and occupy their
//     granted cards for the job's simulated makespan scaled by -dilation.
//     This exercises the real goroutine/lock machinery; CI runs it under
//     -race.
//   - sweep: virtual-time saturation sweep — the same scheduler structures
//     driven by a discrete-event replay, so thousand-card fleets digest 10^4+
//     offered jobs per point in milliseconds. Each point is one offered load
//     (a multiple of the fleet's estimated capacity, -loads, or an absolute
//     -rates list); -ablate re-runs every point with per-job grants to
//     isolate the continuous-batching gain.
//   - closed: closed-loop virtual-time replay — a fixed population of -users
//     clients, each thinking for an exponential -think between jobs; the run
//     ends after -jobs completions. This is the self-throttling regime of a
//     real service ("N concurrent users"), where goodput is the question.
//
// Usage:
//
//	hydra-serve -fleets 8,32 -rate 40 -duration 3s -out BENCH_serve.json
//	hydra-serve -mode sweep -fleets 8,64,256,1024 -jobs 10000 -coalesce 8 -ablate
//	hydra-serve -mode closed -fleets 256 -users 100000 -think 30s -jobs 20000
//
// The mix is the serve package's default shapes: small ConvBN layers,
// mid-size BSGS matrix-vector layers, and whole-server bootstrap batches.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"hydra/internal/hw"
	"hydra/internal/serve"
	"hydra/internal/sim"
)

func main() {
	var opt options
	flag.StringVar(&opt.mode, "mode", "live", "workload mode: live, sweep, or closed")
	flag.StringVar(&opt.fleets, "fleets", "8,32", "comma-separated fleet sizes (cards) to bench")
	flag.IntVar(&opt.cps, "cps", 8, "cards per server (server-boundary for network pricing)")
	flag.Float64Var(&opt.rate, "rate", 40, "live mode: mean job arrivals per second (open loop)")
	flag.StringVar(&opt.rates, "rates", "", "sweep mode: absolute arrival rates (jobs/s); overrides -loads")
	flag.StringVar(&opt.loads, "loads", "0.25,0.5,0.75,1.0,1.25", "sweep mode: offered loads as multiples of estimated fleet capacity")
	flag.DurationVar(&opt.duration, "duration", 3*time.Second, "live mode: arrival horizon per fleet size")
	flag.IntVar(&opt.jobs, "jobs", 10000, "sweep/closed modes: offered (sweep) or completed (closed) jobs per point")
	flag.IntVar(&opt.users, "users", 100000, "closed mode: concurrent user population")
	flag.DurationVar(&opt.think, "think", 30*time.Second, "closed mode: mean think time between a user's jobs")
	flag.Int64Var(&opt.seed, "seed", 1, "workload seed (same seed, same arrival sequence)")
	flag.IntVar(&opt.queue, "queue", 0, "admission queue depth (0 = mode default: 64 live, 1024 sweep/closed)")
	flag.IntVar(&opt.coalesce, "coalesce", 1, "continuous-batching limit: jobs per card grant (1 = per-job grants)")
	flag.BoolVar(&opt.ablate, "ablate", false, "sweep mode: re-run each point with per-job grants for the batching ablation")
	flag.Float64Var(&opt.dilation, "dilation", 0.25, "live mode: real seconds slept per simulated second of card occupancy")
	flag.DurationVar(&opt.timeout, "timeout", 0, "default per-job timeout (0 = none)")
	flag.StringVar(&opt.out, "out", "BENCH_serve.json", "report path (\"-\" = stdout)")
	flag.Parse()

	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-serve:", err)
		os.Exit(1)
	}
}

type options struct {
	mode     string
	fleets   string
	cps      int
	rate     float64
	rates    string
	loads    string
	duration time.Duration
	jobs     int
	users    int
	think    time.Duration
	seed     int64
	queue    int
	coalesce int
	ablate   bool
	dilation float64
	timeout  time.Duration
	out      string
}

// gitSHA returns the measurement provenance commit: scripts/bench.sh exports
// BENCH_GIT_SHA so all BENCH_*.json files agree; a direct invocation falls
// back to asking git.
func gitSHA() string {
	if s := os.Getenv("BENCH_GIT_SHA"); s != "" {
		return s
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// utcTime returns the run's UTC wall-clock stamp, preferring the harness's
// shared BENCH_UTC_TIME.
func utcTime() string {
	if s := os.Getenv("BENCH_UTC_TIME"); s != "" {
		return s
	}
	return time.Now().UTC().Format(time.RFC3339)
}

// fleetReport is the per-fleet-size section of a live-mode report.
type fleetReport struct {
	Cards          int     `json:"cards"`
	CardsPerServer int     `json:"cards_per_server"`
	Offered        int     `json:"offered_jobs"`
	WallSeconds    float64 `json:"wall_seconds"`
	JobsPerSec     float64 `json:"jobs_per_sec"`

	serve.Snapshot
}

// sweepPoint is one saturation-curve sample: a fleet size at an offered load.
type sweepPoint struct {
	Cards          int     `json:"cards"`
	CardsPerServer int     `json:"cards_per_server"`
	Load           float64 `json:"load"` // offered / estimated capacity (0 when -rates given)
	RateHz         float64 `json:"arrival_rate_hz"`
	Coalesce       int     `json:"coalesce"`

	*serve.ReplayStats

	// Solo is the per-job-grant ablation of the same point (-ablate).
	Solo *serve.ReplayStats `json:"solo,omitempty"`
}

// closedPoint is one closed-loop sample: a fleet size under a population.
type closedPoint struct {
	Cards          int           `json:"cards"`
	CardsPerServer int           `json:"cards_per_server"`
	Users          int           `json:"users"`
	ThinkSeconds   float64       `json:"think_seconds"`
	Coalesce       int           `json:"coalesce"`
	WallClock      time.Duration `json:"-"`

	*serve.ReplayStats
}

// report is the whole BENCH_serve.json document. Exactly one of Fleets,
// Sweep, Closed is populated, per -mode.
type report struct {
	GitSHA     string  `json:"git_sha"`
	UTCTime    string  `json:"utc_time"`
	Backend    string  `json:"backend"`
	Mode       string  `json:"mode"`
	Seed       int64   `json:"seed"`
	QueueDepth int     `json:"queue_depth"`
	Coalesce   int     `json:"coalesce"`
	RateHz     float64 `json:"arrival_rate_hz,omitempty"`
	HorizonSec float64 `json:"horizon_seconds,omitempty"`
	Dilation   float64 `json:"dilation,omitempty"`
	Jobs       int     `json:"jobs_per_point,omitempty"`

	Fleets []fleetReport `json:"fleets,omitempty"`
	Sweep  []sweepPoint  `json:"sweep,omitempty"`
	Closed []closedPoint `json:"closed,omitempty"`
}

func run(opt options) error {
	sizes, err := parseFleets(opt.fleets)
	if err != nil {
		return err
	}
	cfg := sim.HydraConfig()
	shapes := serve.DefaultShapes(cfg.Scheme, cfg.Card)

	// Price each shape once up front so admission control (live) and the
	// capacity estimate (sweep) know job costs without simulating arrivals
	// on the hot path.
	est, err := priceShapes(shapes, cfg)
	if err != nil {
		return err
	}

	rep := report{
		GitSHA:     gitSHA(),
		UTCTime:    utcTime(),
		Backend:    "sim",
		Mode:       opt.mode,
		Seed:       opt.seed,
		QueueDepth: opt.queue,
		Coalesce:   opt.coalesce,
	}
	switch opt.mode {
	case "live":
		if rep.QueueDepth == 0 {
			rep.QueueDepth = serve.DefaultQueueDepth
		}
		rep.RateHz = opt.rate
		rep.HorizonSec = opt.duration.Seconds()
		rep.Dilation = opt.dilation
		for _, cards := range sizes {
			fr, err := runLive(cards, rep.QueueDepth, opt, cfg, shapes, est)
			if err != nil {
				return fmt.Errorf("fleet %d: %w", cards, err)
			}
			rep.Fleets = append(rep.Fleets, fr)
			fmt.Fprintf(os.Stderr, "hydra-serve: fleet %4d cards: %d offered, %d completed, %d shed, %.1f jobs/s, exec p50 %.3fs p99 %.3fs\n",
				cards, fr.Offered, fr.Completed, fr.Rejected+fr.Expired, fr.JobsPerSec, fr.ExecP50, fr.ExecP99)
		}
	case "sweep":
		if rep.QueueDepth == 0 {
			rep.QueueDepth = 1024
		}
		rep.Jobs = opt.jobs
		points, err := runSweep(sizes, rep.QueueDepth, opt, cfg, shapes, est)
		if err != nil {
			return err
		}
		rep.Sweep = points
	case "closed":
		if rep.QueueDepth == 0 {
			rep.QueueDepth = 1024
		}
		rep.Jobs = opt.jobs
		for _, cards := range sizes {
			cp, err := runClosed(cards, rep.QueueDepth, opt, cfg, shapes)
			if err != nil {
				return fmt.Errorf("fleet %d: %w", cards, err)
			}
			rep.Closed = append(rep.Closed, cp)
			fmt.Fprintf(os.Stderr, "hydra-serve: fleet %4d cards, %d users: %.1f jobs/s goodput, util %.2f, wait p99 %.3fs [%s]\n",
				cards, opt.users, cp.JobsPerSec, cp.Utilization, cp.QueueWaitP99, cp.WallClock.Round(time.Millisecond))
		}
	default:
		return fmt.Errorf("unknown mode %q (want live, sweep, or closed)", opt.mode)
	}

	w := os.Stdout
	if opt.out != "-" {
		f, err := os.Create(opt.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if opt.out != "-" {
		n := len(rep.Fleets) + len(rep.Sweep) + len(rep.Closed)
		fmt.Fprintf(os.Stderr, "hydra-serve: wrote %s (%d points)\n", opt.out, n)
	}
	return nil
}

// runLive drives one real-time open-loop run against a fresh live server.
func runLive(cards, queue int, opt options, cfg sim.Config, shapes []serve.Shape, est map[string]float64) (fleetReport, error) {
	cps := opt.cps
	if cps > cards {
		cps = cards
	}
	s, err := serve.New(serve.Config{
		Fleet:          hw.Fleet{Cards: cards, CardsPerServer: cps},
		Backend:        &serve.SimBackend{Cfg: cfg, Dilation: opt.dilation},
		QueueDepth:     queue,
		DefaultTimeout: opt.timeout,
		CoalesceLimit:  opt.coalesce,
	})
	if err != nil {
		return fleetReport{}, err
	}
	defer s.Close()

	w := serve.Workload{Seed: opt.seed, Rate: opt.rate, Horizon: opt.duration, Shapes: shapes}
	arrivals, err := w.Generate()
	if err != nil {
		return fleetReport{}, err
	}

	start := time.Now()
	for _, a := range arrivals {
		if wait := a.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		a.Job.EstCost = est[a.Shape]
		// Shapes demanding more cards than this fleet are scaled down to
		// the whole fleet rather than shed as infeasible.
		if a.Job.Cards > cards {
			a.Job.Cards = cards
		}
		if _, err := s.Submit(a.Job); err != nil && !errors.Is(err, serve.ErrOverloaded) && !errors.Is(err, serve.ErrDeadline) {
			return fleetReport{}, err
		}
	}
	s.Drain()
	wall := time.Since(start).Seconds()

	snap := s.Metrics().Snapshot()
	fr := fleetReport{
		Cards:          cards,
		CardsPerServer: cps,
		Offered:        len(arrivals),
		WallSeconds:    wall,
		Snapshot:       snap,
	}
	if wall > 0 {
		fr.JobsPerSec = float64(snap.Completed) / wall
	}
	return fr, nil
}

// capacityHz estimates the fleet's job-completion ceiling from the shape mix:
// cards divided by the mean card-seconds one job of the mix consumes.
func capacityHz(cards int, shapes []serve.Shape, est map[string]float64) float64 {
	totalW, cardSec := 0.0, 0.0
	for _, sh := range shapes {
		totalW += sh.Weight
		cardSec += sh.Weight * float64(sh.Cards) * est[sh.Name]
	}
	if cardSec == 0 {
		return 0
	}
	return float64(cards) * totalW / cardSec
}

// runSweep produces the saturation curve: per fleet size, one virtual-time
// replay per offered load, with an optional per-job-grant ablation.
func runSweep(sizes []int, queue int, opt options, cfg sim.Config, shapes []serve.Shape, est map[string]float64) ([]sweepPoint, error) {
	absRates, err := parseFloats(opt.rates)
	if err != nil {
		return nil, fmt.Errorf("-rates: %w", err)
	}
	loads, err := parseFloats(opt.loads)
	if err != nil {
		return nil, fmt.Errorf("-loads: %w", err)
	}
	if len(absRates) == 0 && len(loads) == 0 {
		return nil, fmt.Errorf("sweep mode needs -rates or -loads")
	}

	var points []sweepPoint
	for _, cards := range sizes {
		cps := opt.cps
		if cps > cards {
			cps = cards
		}
		fit := fitShapes(shapes, cards)
		rc := serve.ReplayConfig{
			Fleet:      hw.Fleet{Cards: cards, CardsPerServer: cps},
			QueueDepth: queue,
			Coalesce:   opt.coalesce,
			Cost:       serve.SimCost(cfg, cps),
		}
		cap := capacityHz(cards, fit, est)
		rates := absRates
		pointLoads := make([]float64, len(absRates))
		if len(rates) == 0 {
			for _, l := range loads {
				rates = append(rates, l*cap)
				pointLoads = append(pointLoads, l)
			}
		}
		for i, rate := range rates {
			w := serve.Workload{Seed: opt.seed, Rate: rate, Shapes: fit}
			arrivals, err := w.GenerateN(opt.jobs)
			if err != nil {
				return nil, err
			}
			st, err := serve.Replay(arrivals, rc)
			if err != nil {
				return nil, fmt.Errorf("fleet %d rate %.1f: %w", cards, rate, err)
			}
			pt := sweepPoint{
				Cards:          cards,
				CardsPerServer: cps,
				Load:           pointLoads[i],
				RateHz:         rate,
				Coalesce:       opt.coalesce,
				ReplayStats:    st,
			}
			if opt.ablate && opt.coalesce > 1 {
				solo := rc
				solo.Coalesce = 1
				soloStats, err := serve.Replay(arrivals, solo)
				if err != nil {
					return nil, fmt.Errorf("fleet %d rate %.1f ablation: %w", cards, rate, err)
				}
				pt.Solo = soloStats
			}
			points = append(points, pt)
			fmt.Fprintf(os.Stderr, "hydra-serve: sweep fleet %4d load %.2f (%.1f/s): %.1f jobs/s, util %.2f, wait p99 %.3fs, shed %d\n",
				cards, pt.Load, rate, st.JobsPerSec, st.Utilization, st.QueueWaitP99, st.Shed)
		}
	}
	return points, nil
}

// runClosed drives one closed-loop replay for a fleet size.
func runClosed(cards, queue int, opt options, cfg sim.Config, shapes []serve.Shape) (closedPoint, error) {
	cps := opt.cps
	if cps > cards {
		cps = cards
	}
	rc := serve.ReplayConfig{
		Fleet:      hw.Fleet{Cards: cards, CardsPerServer: cps},
		QueueDepth: queue,
		Coalesce:   opt.coalesce,
		Cost:       serve.SimCost(cfg, cps),
	}
	start := time.Now()
	st, err := serve.ReplayClosed(opt.users, opt.jobs, opt.think, opt.seed, fitShapes(shapes, cards), rc)
	if err != nil {
		return closedPoint{}, err
	}
	return closedPoint{
		Cards:          cards,
		CardsPerServer: cps,
		Users:          opt.users,
		ThinkSeconds:   opt.think.Seconds(),
		Coalesce:       opt.coalesce,
		WallClock:      time.Since(start),
		ReplayStats:    st,
	}, nil
}

// fitShapes caps shape demands at the fleet size, so small fleets run the
// mix scaled down instead of shedding wide shapes as infeasible.
func fitShapes(shapes []serve.Shape, cards int) []serve.Shape {
	out := make([]serve.Shape, len(shapes))
	copy(out, shapes)
	for i := range out {
		if out[i].Cards > cards {
			out[i].Cards = cards
		}
	}
	return out
}

// priceShapes simulates each shape once at its native card demand.
func priceShapes(shapes []serve.Shape, cfg sim.Config) (map[string]float64, error) {
	est := make(map[string]float64, len(shapes))
	for _, sh := range shapes {
		prog, err := sh.Build(sh.Cards)
		if err != nil {
			return nil, fmt.Errorf("shape %s: %w", sh.Name, err)
		}
		res, err := sim.Run(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("shape %s: %w", sh.Name, err)
		}
		est[sh.Name] = res.Makespan
	}
	return est, nil
}

func parseFleets(list string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no fleet sizes given")
	}
	sort.Ints(sizes)
	return sizes, nil
}

func parseFloats(list string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
