// Command hydra-serve replays a synthetic open-loop inference workload
// against the multi-tenant serving layer (internal/serve) and reports
// throughput and latency percentiles per fleet size.
//
// Usage:
//
//	hydra-serve -fleets 8,32 -rate 40 -duration 3s -out BENCH_serve.json
//	hydra-serve -fleets 16 -rate 20 -duration 1s -dilation 0.1 -out -
//
// Jobs arrive per a Poisson process at -rate jobs/s regardless of how the
// fleet keeps up (open loop — this is what exposes queueing and overload;
// closed-loop drivers self-throttle and hide both). The mix is the serve
// package's default shapes: small ConvBN layers, mid-size BSGS matrix-vector
// layers, and whole-server bootstrap batches. Each job executes on the
// analytic sim backend, occupying its granted cards for the job's simulated
// makespan scaled by -dilation real seconds per simulated second.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"hydra/internal/hw"
	"hydra/internal/serve"
	"hydra/internal/sim"
)

func main() {
	fleets := flag.String("fleets", "8,32", "comma-separated fleet sizes (cards) to bench")
	cps := flag.Int("cps", 8, "cards per server (server-boundary for network pricing)")
	rate := flag.Float64("rate", 40, "mean job arrivals per second (open loop)")
	duration := flag.Duration("duration", 3*time.Second, "arrival horizon per fleet size")
	seed := flag.Int64("seed", 1, "workload seed (same seed, same arrival sequence)")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth")
	dilation := flag.Float64("dilation", 0.25, "real seconds slept per simulated second of card occupancy")
	timeout := flag.Duration("timeout", 0, "default per-job timeout (0 = none)")
	out := flag.String("out", "BENCH_serve.json", "report path (\"-\" = stdout)")
	flag.Parse()

	if err := run(*fleets, *cps, *rate, *duration, *seed, *queue, *dilation, *timeout, *out); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-serve:", err)
		os.Exit(1)
	}
}

// gitSHA returns the measurement provenance commit: scripts/bench.sh exports
// BENCH_GIT_SHA so all four BENCH_*.json files agree; a direct invocation
// falls back to asking git.
func gitSHA() string {
	if s := os.Getenv("BENCH_GIT_SHA"); s != "" {
		return s
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// utcTime returns the run's UTC wall-clock stamp, preferring the harness's
// shared BENCH_UTC_TIME.
func utcTime() string {
	if s := os.Getenv("BENCH_UTC_TIME"); s != "" {
		return s
	}
	return time.Now().UTC().Format(time.RFC3339)
}

// fleetReport is the per-fleet-size section of BENCH_serve.json.
type fleetReport struct {
	Cards          int     `json:"cards"`
	CardsPerServer int     `json:"cards_per_server"`
	Offered        int     `json:"offered_jobs"`
	WallSeconds    float64 `json:"wall_seconds"`
	JobsPerSec     float64 `json:"jobs_per_sec"`

	serve.Snapshot
}

// report is the whole BENCH_serve.json document.
type report struct {
	GitSHA     string        `json:"git_sha"`
	UTCTime    string        `json:"utc_time"`
	Backend    string        `json:"backend"`
	RateHz     float64       `json:"arrival_rate_hz"`
	HorizonSec float64       `json:"horizon_seconds"`
	Seed       int64         `json:"seed"`
	Dilation   float64       `json:"dilation"`
	QueueDepth int           `json:"queue_depth"`
	Fleets     []fleetReport `json:"fleets"`
}

func run(fleetList string, cps int, rate float64, duration time.Duration, seed int64, queue int, dilation float64, timeout time.Duration, out string) error {
	sizes, err := parseFleets(fleetList)
	if err != nil {
		return err
	}
	cfg := sim.HydraConfig()
	shapes := serve.DefaultShapes(cfg.Scheme, cfg.Card)

	// Price each shape once up front so admission control knows job costs
	// without simulating every arrival on the submit path.
	est, err := priceShapes(shapes, cfg)
	if err != nil {
		return err
	}

	rep := report{
		GitSHA:     gitSHA(),
		UTCTime:    utcTime(),
		Backend:    "sim",
		RateHz:     rate,
		HorizonSec: duration.Seconds(),
		Seed:       seed,
		Dilation:   dilation,
		QueueDepth: queue,
	}
	for _, cards := range sizes {
		fr, err := replay(cards, cps, rate, duration, seed, queue, dilation, timeout, cfg, shapes, est)
		if err != nil {
			return fmt.Errorf("fleet %d: %w", cards, err)
		}
		rep.Fleets = append(rep.Fleets, fr)
		fmt.Fprintf(os.Stderr, "hydra-serve: fleet %2d cards: %d offered, %d completed, %d shed, %.1f jobs/s, exec p50 %.3fs p99 %.3fs\n",
			cards, fr.Offered, fr.Completed, fr.Rejected+fr.Expired, fr.JobsPerSec, fr.ExecP50, fr.ExecP99)
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "hydra-serve: wrote %s (%d fleet sizes)\n", out, len(rep.Fleets))
	}
	return nil
}

// replay drives one open-loop run against a fresh server of the given size.
func replay(cards, cps int, rate float64, duration time.Duration, seed int64, queue int, dilation float64, timeout time.Duration, cfg sim.Config, shapes []serve.Shape, est map[string]float64) (fleetReport, error) {
	if cps > cards {
		cps = cards
	}
	s, err := serve.New(serve.Config{
		Fleet:          hw.Fleet{Cards: cards, CardsPerServer: cps},
		Backend:        &serve.SimBackend{Cfg: cfg, Dilation: dilation},
		QueueDepth:     queue,
		DefaultTimeout: timeout,
	})
	if err != nil {
		return fleetReport{}, err
	}
	defer s.Close()

	// Shapes demanding more cards than this fleet are scaled down to the
	// whole fleet rather than shed as infeasible.
	w := serve.Workload{Seed: seed, Rate: rate, Horizon: duration, Shapes: shapes}
	arrivals, err := w.Generate()
	if err != nil {
		return fleetReport{}, err
	}

	start := time.Now()
	for _, a := range arrivals {
		if wait := a.At - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		a.Job.EstCost = est[a.Shape]
		if a.Job.Cards > cards {
			a.Job.Cards = cards
		}
		if _, err := s.Submit(a.Job); err != nil && !errors.Is(err, serve.ErrOverloaded) && !errors.Is(err, serve.ErrDeadline) {
			return fleetReport{}, err
		}
	}
	s.Drain()
	wall := time.Since(start).Seconds()

	snap := s.Metrics().Snapshot()
	fr := fleetReport{
		Cards:          cards,
		CardsPerServer: cps,
		Offered:        len(arrivals),
		WallSeconds:    wall,
		Snapshot:       snap,
	}
	if wall > 0 {
		fr.JobsPerSec = float64(snap.Completed) / wall
	}
	return fr, nil
}

// priceShapes simulates each shape once at its native card demand.
func priceShapes(shapes []serve.Shape, cfg sim.Config) (map[string]float64, error) {
	est := make(map[string]float64, len(shapes))
	for _, sh := range shapes {
		prog, err := sh.Build(sh.Cards)
		if err != nil {
			return nil, fmt.Errorf("shape %s: %w", sh.Name, err)
		}
		res, err := sim.Run(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("shape %s: %w", sh.Name, err)
		}
		est[sh.Name] = res.Makespan
	}
	return est, nil
}

func parseFleets(list string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no fleet sizes given")
	}
	sort.Ints(sizes)
	return sizes, nil
}
