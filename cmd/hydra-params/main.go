// Command hydra-params searches the bootstrapping-DFT parameter space of
// Eq. 1 — per-level Radix and baby-step count under a multiplication-depth
// budget — for a given card count, reproducing the machinery behind Table V.
//
// Usage:
//
//	hydra-params -logslots 15 -levels 3 -cards 64
//	hydra-params -sweep           # the full Table V grid
package main

import (
	"flag"
	"fmt"
	"os"

	"hydra/internal/experiments"
	"hydra/internal/mapping"
)

func main() {
	logSlots := flag.Int("logslots", 15, "log2 of the ciphertext slot count")
	levels := flag.Int("levels", 3, "DFT levels (multiplication-depth budget)")
	cards := flag.Int("cards", 1, "number of accelerator cards")
	sweep := flag.Bool("sweep", false, "print the full Table V grid instead")
	flag.Parse()

	if *sweep {
		rows, err := experiments.Table5()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hydra-params:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatTable5(rows))
		return
	}

	proto := experiments.HydraN(*cards)
	times := proto.OpTimes()
	params, total, err := mapping.OptimizeDFT(*logSlots, *levels, *cards, times)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-params:", err)
		os.Exit(1)
	}
	fmt.Printf("logSlots=%d levels=%d cards=%d\n", *logSlots, *levels, *cards)
	fmt.Printf("optimal Radix=%v bs=%v  (one DFT pass: %.3f ms)\n", params.Radix, params.BS, total*1e3)
	for i := range params.Radix {
		gs := 2 * params.Radix[i] / params.BS[i]
		fmt.Printf("  level %d: radix %3d, bs %2d, gs %3d, level time %.3f ms\n",
			i, params.Radix[i], params.BS[i], gs,
			mapping.DFTLevelTime(params.Radix[i], params.BS[i], *cards, times)*1e3)
	}
}
