// Command hydrasim regenerates the tables and figures of the Hydra paper's
// evaluation section from the simulator.
//
// Usage:
//
//	hydrasim -exp table1|table2|table3|table4|table5|fig6|fig7|fig8|fig9|all
//	hydrasim -exp fig9 -benchmark ResNet-50
//	hydrasim -trace-json trace.json -benchmark ResNet-20 -cards 8
//
// With -trace-json the named benchmark is lowered onto a Hydra fleet of
// -cards cards and simulated with per-task trace collection; the scheduled
// compute/send/recv occurrences are written as JSON (to stdout with "-")
// instead of regenerating the paper artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hydra/internal/experiments"
	"hydra/internal/model"
	"hydra/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate: table1..table5, fig6..fig9, all")
	benchmark := flag.String("benchmark", "", "restrict fig9 to one benchmark (default: the paper's ResNet-50 and OPT-6.7B panels plus all comm-share curves)")
	traceJSON := flag.String("trace-json", "", "simulate one benchmark with trace collection and write the task-level schedule as JSON to this path (\"-\" = stdout)")
	cards := flag.Int("cards", 8, "fleet size for -trace-json")
	flag.Parse()

	if *traceJSON != "" {
		if err := runTraceJSON(*traceJSON, *benchmark, *cards); err != nil {
			fmt.Fprintln(os.Stderr, "hydrasim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *benchmark); err != nil {
		fmt.Fprintln(os.Stderr, "hydrasim:", err)
		os.Exit(1)
	}
}

// traceDump is the -trace-json output shape.
type traceDump struct {
	Benchmark string           `json:"benchmark"`
	Cards     int              `json:"cards"`
	Makespan  float64          `json:"makespan_seconds"`
	Events    []sim.TraceEvent `json:"events"`
}

func runTraceJSON(path, benchmark string, cards int) error {
	if benchmark == "" {
		benchmark = "ResNet-20"
	}
	net, err := findBenchmark(benchmark)
	if err != nil {
		return err
	}
	proto := experiments.HydraN(cards)
	prog, err := proto.Build(net)
	if err != nil {
		return err
	}
	cfg := proto.Sim
	cfg.CollectTrace = true
	res, err := sim.Run(prog, cfg)
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traceDump{Benchmark: net.Name, Cards: cards, Makespan: res.Makespan, Events: res.Trace}); err != nil {
		return err
	}
	if path != "-" {
		fmt.Printf("hydrasim: wrote %d trace events to %s\n", len(res.Trace), path)
	}
	return nil
}

// findBenchmark resolves a benchmark by name from the paper's four networks
// plus the functional-validation ResNet-20.
func findBenchmark(name string) (model.Network, error) {
	for _, n := range append(model.Benchmarks(), model.ResNet20()) {
		if n.Name == name {
			return n, nil
		}
	}
	return model.Network{}, fmt.Errorf("unknown benchmark %q", name)
}

func run(exp, benchmark string) error {
	runners := map[string]func(string) error{
		"table1": func(string) error { fmt.Print(experiments.FormatTable1()); return nil },
		"table2": func(string) error {
			res, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Print(res.Format())
			return nil
		},
		"table3": func(string) error {
			res, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Print(res.Format())
			return nil
		},
		"table4": func(string) error { fmt.Print(experiments.FormatTable4()); return nil },
		"table5": func(string) error {
			rows, err := experiments.Table5()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable5(rows))
			return nil
		},
		"fig6": func(string) error {
			series, err := experiments.Fig6()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFig6(series))
			return nil
		},
		"fig7": func(string) error {
			entries, err := experiments.Fig7()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFig7(entries))
			return nil
		},
		"fig8": func(string) error {
			entries, err := experiments.Fig8()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFig8(entries))
			return nil
		},
		"fig9": runFig9,
	}
	if exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "fig6", "fig7", "fig8", "fig9"} {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](benchmark); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	fn, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return fn(benchmark)
}

func runFig9(benchmark string) error {
	nets := []model.Network{model.ResNet50(), model.OPT67B()}
	if benchmark != "" {
		nets = nil
		for _, n := range model.Benchmarks() {
			if n.Name == benchmark {
				nets = []model.Network{n}
			}
		}
		if nets == nil {
			return fmt.Errorf("unknown benchmark %q", benchmark)
		}
	}
	for _, net := range nets {
		sweep, err := experiments.Fig9(net, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig9(sweep))
	}
	if benchmark == "" {
		// Fig. 9(c): comm-share growth for all four benchmarks.
		fmt.Println("Fig. 9(c): communication share vs cards")
		for _, net := range model.Benchmarks() {
			sweep, err := experiments.Fig9(net, nil)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s", net.Name)
			for _, v := range sweep.CommShare {
				fmt.Printf(" %6.2f%%", 100*v)
			}
			fmt.Println()
		}
	}
	return nil
}
