// hydra-genkernels emits the codegen-specialized NTT kernels for the shipped
// ring degrees (internal/ring/ntt_gen.go).
//
// The generator is a compiler-shaped tool, not a text macro: it loads the
// ring package through go/parser + go/types, validates against the checked
// package that every field and helper the emitted kernels touch still exists
// with the expected type (so a refactor of NTTTable breaks generation loudly
// instead of emitting stale kernels), reads the shipped degree list out of
// the ShippedKernelLogNs declaration's AST, and round-trips the emitted
// source through go/parser + go/printer + go/format so a syntactically
// invalid kernel can never reach disk.
//
// Per degree it emits a forward/inverse pair specialized three ways over the
// generic merged kernel:
//
//   - Every stage's block count and stride is a compile-time literal and the
//     rows are addressed through fixed-size array pointers, so the stage
//     loops carry no bounds checks or divisions.
//   - The bit-reverse permutation is fused into a butterfly pass instead of
//     running as its own branchy memory pass: the forward scatters its last
//     stage pair's outputs through brv while canonicalizing, the inverse
//     gathers its first stage pair's inputs through brv. The kernels
//     ping-pong through one pooled scratch row to keep the fused permute
//     out-of-place (a scattered in-place write would destroy unread inputs).
//   - The forward runs the correction-free lazy schedule (see
//     ring.GeneratedQBound): Shoup's lazy product lies in [0, 2q) for any
//     64-bit multiplicand, so for shipped moduli the per-stage conditional
//     corrections vanish and one Barrett reduction in the closing scatter
//     restores canonical residues.
//
// All emitted kernels are bit-identical to the generic merged kernels
// (pinned by ntt_gen_test.go); run `go generate ./internal/ring/` after any
// table or shipped-degree change, and the CI freshness stage keeps the
// checked-in ntt_gen.go from drifting.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/format"
	"go/importer"
	"go/parser"
	"go/printer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the ring package to generate into")
	out := flag.String("out", "ntt_gen.go", "output file name, relative to -dir")
	flag.Parse()

	if err := run(*dir, *out); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-genkernels:", err)
		os.Exit(1)
	}
}

func run(dir, out string) error {
	fset := token.NewFileSet()
	files, err := loadPackageFiles(fset, dir, out)
	if err != nil {
		return err
	}
	pkg, err := typeCheck(fset, files)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", dir, err)
	}
	if err := validateKernelContract(pkg); err != nil {
		return fmt.Errorf("ring package drifted from the kernel contract: %w", err)
	}
	logNs, err := shippedLogNs(files)
	if err != nil {
		return err
	}
	src, err := emitFile(fset, logNs)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, out), src, 0o644)
}

// loadPackageFiles parses every non-test file of the package except the
// generated output itself (regeneration must not depend on the previous
// generation being type-correct).
func loadPackageFiles(fset *token.FileSet, dir, out string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || name == out {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no package files found in %s", dir)
	}
	return files, nil
}

func typeCheck(fset *token.FileSet, files []*ast.File) (*types.Package, error) {
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	return conf.Check("hydra/internal/ring", fset, files, nil)
}

// kernelContract lists everything the emitted kernels reference in the ring
// package, with the type each must have. Validation walks this table against
// the go/types-checked package.
var kernelContract = struct {
	tableFields   map[string]string // NTTTable field -> type
	modulusFields map[string]string // Modulus field -> type
	funcs         map[string]string // package function -> signature
}{
	tableFields: map[string]string{
		"N":                 "int",
		"LogN":              "int",
		"Mod":               "hydra/internal/ring.Modulus",
		"psiMerged":         "[]uint64",
		"psiMergedShoup":    "[]uint64",
		"psiInvMerged":      "[]uint64",
		"psiInvMergedShoup": "[]uint64",
		"brv":               "[]int",
		"nInv":              "uint64",
		"nInvShoup":         "uint64",
		"invLastW":          "uint64",
		"invLastWShoup":     "uint64",
	},
	modulusFields: map[string]string{
		"Q":         "uint64",
		"BarrettHi": "uint64",
	},
	funcs: map[string]string{
		"MulModShoupLazy":          "func(a uint64, w uint64, wShoup uint64, q uint64) uint64",
		"MulModShoup":              "func(a uint64, w uint64, wShoup uint64, q uint64) uint64",
		"registerGeneratedKernels": "func(logN int, fwd hydra/internal/ring.generatedKernel, inv hydra/internal/ring.generatedKernel)",
	},
}

func validateKernelContract(pkg *types.Package) error {
	structFields := func(name string) (map[string]types.Type, error) {
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			return nil, fmt.Errorf("type %s not found", name)
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, fmt.Errorf("%s is not a struct", name)
		}
		fields := make(map[string]types.Type, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[st.Field(i).Name()] = st.Field(i).Type()
		}
		return fields, nil
	}

	table, err := structFields("NTTTable")
	if err != nil {
		return err
	}
	for name, want := range kernelContract.tableFields {
		got, ok := table[name]
		if !ok {
			return fmt.Errorf("NTTTable lost field %s (%s)", name, want)
		}
		if got.String() != want {
			return fmt.Errorf("NTTTable.%s is %s, kernels expect %s", name, got, want)
		}
	}
	mod, err := structFields("Modulus")
	if err != nil {
		return err
	}
	for name, want := range kernelContract.modulusFields {
		got, ok := mod[name]
		if !ok {
			return fmt.Errorf("Modulus lost field %s (%s)", name, want)
		}
		if got.String() != want {
			return fmt.Errorf("Modulus.%s is %s, kernels expect %s", name, got, want)
		}
	}
	for name, want := range kernelContract.funcs {
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			return fmt.Errorf("function %s not found", name)
		}
		if got := obj.Type().String(); got != want {
			return fmt.Errorf("%s is %s, kernels expect %s", name, got, want)
		}
	}
	return nil
}

// shippedLogNs extracts the literal elements of ShippedKernelLogNs from the
// package AST, so shipped.go stays the single source of truth for which
// degrees get kernels.
func shippedLogNs(files []*ast.File) ([]int, error) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "ShippedKernelLogNs" {
					continue
				}
				if len(vs.Values) != 1 {
					return nil, fmt.Errorf("ShippedKernelLogNs must have exactly one value")
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					return nil, fmt.Errorf("ShippedKernelLogNs must be a composite literal")
				}
				var logNs []int
				for _, el := range cl.Elts {
					bl, ok := el.(*ast.BasicLit)
					if !ok || bl.Kind != token.INT {
						return nil, fmt.Errorf("ShippedKernelLogNs elements must be integer literals")
					}
					v, err := strconv.Atoi(bl.Value)
					if err != nil {
						return nil, err
					}
					if v < 4 || v > 20 {
						return nil, fmt.Errorf("shipped LogN %d outside the supported range [4,20]", v)
					}
					logNs = append(logNs, v)
				}
				if len(logNs) == 0 {
					return nil, fmt.Errorf("ShippedKernelLogNs is empty")
				}
				return logNs, nil
			}
		}
	}
	return nil, fmt.Errorf("ShippedKernelLogNs declaration not found")
}

// emitFile builds the generated source and proves it syntactically valid by
// round-tripping it through go/parser + go/printer before gofmt'ing.
func emitFile(fset *token.FileSet, logNs []int) ([]byte, error) {
	var b bytes.Buffer
	fmt.Fprintf(&b, `// Code generated by hydra-genkernels. DO NOT EDIT.

// Specialized negacyclic NTT kernels for the shipped ring degrees.
// Regenerate with: go generate ./internal/ring/
//
// Each kernel pins every stage's geometry as compile-time literals, fuses
// the bit-reverse permutation into a butterfly pass (forward: closing
// scatter; inverse: opening gather) via the pooled scratch row, and — for
// the forward — runs the correction-free lazy schedule gated by
// GeneratedQBound, canonicalizing once with a single-word Barrett reduction
// in the closing scatter. Bit-identical to the generic merged kernels.

package ring

import "math/bits"

func init() {
`)
	for _, l := range logNs {
		fmt.Fprintf(&b, "\tregisterGeneratedKernels(%d, genForward%d, genInverse%d)\n", l, 1<<l, 1<<l)
	}
	fmt.Fprintf(&b, "}\n")
	for _, l := range logNs {
		emitForward(&b, l)
		emitInverse(&b, l)
	}

	genFset := token.NewFileSet()
	f, err := parser.ParseFile(genFset, "ntt_gen.go", b.Bytes(), parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("emitted source does not parse: %w", err)
	}
	var printed bytes.Buffer
	if err := printer.Fprint(&printed, genFset, f); err != nil {
		return nil, err
	}
	return format.Source(printed.Bytes())
}

// fwdMidPairs returns the m values of the in-place middle stage pairs of the
// forward network (everything between the opening pass and the fused closing
// scatter at m = N/4).
func fwdMidPairs(logN int) []int {
	first := 4 // even logN: opening pair handled m=1, mids start at 4
	if logN&1 == 1 {
		first = 2 // odd logN: opening radix-2 handled m=1, pairs start at 2
	}
	var ms []int
	for m := first; m < 1<<logN/4; m <<= 2 {
		ms = append(ms, m)
	}
	return ms
}

// invMidPairs returns the m values of the in-place middle stage pairs of the
// inverse network (between the fused opening gather at m = N and the folding
// closing pass).
func invMidPairs(logN int) []int {
	last := 16 // even logN: closing fold pair is m=4
	if logN&1 == 1 {
		last = 8 // odd logN: closing fold is the trailing radix-2
	}
	var ms []int
	for m := 1 << logN / 4; m >= last; m >>= 2 {
		ms = append(ms, m)
	}
	return ms
}

func emitForward(b *bytes.Buffer, logN int) {
	n := 1 << logN
	fmt.Fprintf(b, `
// genForward%d: specialized correction-free forward NTT, N = 2^%d.
func genForward%d(t *NTTTable, a, scratch []uint64) {
	q := t.Mod.Q
	twoQ := q << 1
	bHi := t.Mod.BarrettHi
	ap := (*[%d]uint64)(a)
	sp := (*[%d]uint64)(scratch)
	pm := (*[%d]uint64)(t.psiMerged)
	pms := (*[%d]uint64)(t.psiMergedShoup)
	brv := (*[%d]int)(t.brv)
`, n, logN, n, n, n, n, n, n)

	if logN&1 == 1 {
		// Opening radix-2 stage (m=1), a -> scratch.
		h := n / 2
		fmt.Fprintf(b, `
	// Opening radix-2 stage (m=1): a -> scratch.
	{
		w, ws := pm[1], pms[1]
		for j := 0; j < %d; j++ {
			x := ap[j]
			v := MulModShoupLazy(ap[j+%d], w, ws, q)
			sp[j] = x + v
			sp[j+%d] = x + twoQ - v
		}
	}
`, h, h, h)
	} else {
		// Opening fused stage pair (m=1), a -> scratch.
		tq := n / 4
		fmt.Fprintf(b, `
	// Opening stage pair (m=1, tq=%d): a -> scratch.
	{
		w1, w1s := pm[1], pms[1]
		w2, w2s := pm[2], pms[2]
		w3, w3s := pm[3], pms[3]
		for j := 0; j < %d; j++ {
			x0 := ap[j]
			x1 := ap[j+%d]
			x2 := ap[j+%d]
			x3 := ap[j+%d]
			v := MulModShoupLazy(x2, w1, w1s, q)
			y0 := x0 + v
			y2 := x0 + twoQ - v
			v = MulModShoupLazy(x3, w1, w1s, q)
			y1 := x1 + v
			y3 := x1 + twoQ - v
			v = MulModShoupLazy(y1, w2, w2s, q)
			sp[j] = y0 + v
			sp[j+%d] = y0 + twoQ - v
			v = MulModShoupLazy(y3, w3, w3s, q)
			sp[j+%d] = y2 + v
			sp[j+%d] = y2 + twoQ - v
		}
	}
`, tq, tq, tq, 2*tq, 3*tq, tq, 2*tq, 3*tq)
	}

	for _, m := range fwdMidPairs(logN) {
		tq := n / (4 * m)
		fmt.Fprintf(b, `
	// Stage pair m=%d (tq=%d), in place on scratch.
	for i := 0; i < %d; i++ {
		w1, w1s := pm[%d+i], pms[%d+i]
		w2, w2s := pm[%d+2*i], pms[%d+2*i]
		w3, w3s := pm[%d+2*i+1], pms[%d+2*i+1]
		base := %d * i
		for j := base; j < base+%d; j++ {
			x0 := sp[j]
			x1 := sp[j+%d]
			x2 := sp[j+%d]
			x3 := sp[j+%d]
			v := MulModShoupLazy(x2, w1, w1s, q)
			y0 := x0 + v
			y2 := x0 + twoQ - v
			v = MulModShoupLazy(x3, w1, w1s, q)
			y1 := x1 + v
			y3 := x1 + twoQ - v
			v = MulModShoupLazy(y1, w2, w2s, q)
			sp[j] = y0 + v
			sp[j+%d] = y0 + twoQ - v
			v = MulModShoupLazy(y3, w3, w3s, q)
			sp[j+%d] = y2 + v
			sp[j+%d] = y2 + twoQ - v
		}
	}
`, m, tq, m, m, m, 2*m, 2*m, 2*m, 2*m, 4*tq, tq, tq, 2*tq, 3*tq, tq, 2*tq, 3*tq)
	}

	// Closing stage pair (m = N/4, tq = 1): scratch -> a with the
	// bit-reverse scatter and the canonicalizing Barrett reduction fused in.
	m := n / 4
	fmt.Fprintf(b, `
	// Closing stage pair m=%d (tq=1): scratch -> a, bit-reverse scatter and
	// Barrett canonicalization fused into the writes.
	for d := 0; d < %d; d++ {
		i := brv[d<<2] & %d
		x0 := sp[4*i]
		x1 := sp[4*i+1]
		x2 := sp[4*i+2]
		x3 := sp[4*i+3]
		w1, w1s := pm[%d+i], pms[%d+i]
		w2, w2s := pm[%d+2*i], pms[%d+2*i]
		w3, w3s := pm[%d+2*i+1], pms[%d+2*i+1]
		v := MulModShoupLazy(x2, w1, w1s, q)
		y0 := x0 + v
		y2 := x0 + twoQ - v
		v = MulModShoupLazy(x3, w1, w1s, q)
		y1 := x1 + v
		y3 := x1 + twoQ - v
		v = MulModShoupLazy(y1, w2, w2s, q)
		o0 := y0 + v
		o1 := y0 + twoQ - v
		v = MulModShoupLazy(y3, w3, w3s, q)
		o2 := y2 + v
		o3 := y2 + twoQ - v
		hi0, _ := bits.Mul64(o0, bHi)
		r0 := o0 - hi0*q
		if r0 >= twoQ {
			r0 -= twoQ
		}
		if r0 >= q {
			r0 -= q
		}
		ap[d] = r0
		hi1, _ := bits.Mul64(o1, bHi)
		r1 := o1 - hi1*q
		if r1 >= twoQ {
			r1 -= twoQ
		}
		if r1 >= q {
			r1 -= q
		}
		ap[d+%d] = r1
		hi2, _ := bits.Mul64(o2, bHi)
		r2 := o2 - hi2*q
		if r2 >= twoQ {
			r2 -= twoQ
		}
		if r2 >= q {
			r2 -= q
		}
		ap[d+%d] = r2
		hi3, _ := bits.Mul64(o3, bHi)
		r3 := o3 - hi3*q
		if r3 >= twoQ {
			r3 -= twoQ
		}
		if r3 >= q {
			r3 -= q
		}
		ap[d+%d] = r3
	}
}
`, m, m, m-1, m, m, 2*m, 2*m, 2*m, 2*m, n/2, n/4, 3*n/4)
}

func emitInverse(b *bytes.Buffer, logN int) {
	n := 1 << logN
	nq := n / 4
	fmt.Fprintf(b, `
// genInverse%d: specialized inverse NTT with the bit-reverse gather fused
// into the opening stage pair, N = 2^%d.
func genInverse%d(t *NTTTable, a, scratch []uint64) {
	q := t.Mod.Q
	twoQ := q << 1
	ap := (*[%d]uint64)(a)
	sp := (*[%d]uint64)(scratch)
	pim := (*[%d]uint64)(t.psiInvMerged)
	pims := (*[%d]uint64)(t.psiInvMergedShoup)
	brv := (*[%d]int)(t.brv)
`, n, logN, n, n, n, n, n, n)

	// Opening stage pair (m = N, tt = 1): a -> scratch with the bit-reverse
	// gather fused into the reads.
	fmt.Fprintf(b, `
	// Opening stage pair m=%d (tt=1): a -> scratch, bit-reverse gather
	// fused into the reads.
	for i := 0; i < %d; i++ {
		d := brv[i<<2] & %d
		y0 := ap[d]
		y1 := ap[d+%d]
		y2 := ap[d+%d]
		y3 := ap[d+%d]
		sA0, sA0s := pim[%d+2*i], pims[%d+2*i]
		sA1, sA1s := pim[%d+2*i+1], pims[%d+2*i+1]
		sB, sBs := pim[%d+i], pims[%d+i]
		u0 := y0 + y1
		if u0 >= twoQ {
			u0 -= twoQ
		}
		v0 := MulModShoupLazy(y0+twoQ-y1, sA0, sA0s, q)
		u1 := y2 + y3
		if u1 >= twoQ {
			u1 -= twoQ
		}
		v1 := MulModShoupLazy(y2+twoQ-y3, sA1, sA1s, q)
		s0 := u0 + u1
		if s0 >= twoQ {
			s0 -= twoQ
		}
		sp[4*i] = s0
		sp[4*i+2] = MulModShoupLazy(u0+twoQ-u1, sB, sBs, q)
		s1 := v0 + v1
		if s1 >= twoQ {
			s1 -= twoQ
		}
		sp[4*i+1] = s1
		sp[4*i+3] = MulModShoupLazy(v0+twoQ-v1, sB, sBs, q)
	}
`, n, nq, nq-1, n/2, n/4, 3*n/4, n/2, n/2, n/2, n/2, nq, nq)

	for _, m := range invMidPairs(logN) {
		h := m / 2
		hq := m / 4
		tt := n / m
		fmt.Fprintf(b, `
	// Stage pair m=%d (tt=%d), in place on scratch.
	for i := 0; i < %d; i++ {
		sA0, sA0s := pim[%d+2*i], pims[%d+2*i]
		sA1, sA1s := pim[%d+2*i+1], pims[%d+2*i+1]
		sB, sBs := pim[%d+i], pims[%d+i]
		base := %d * i
		for j := base; j < base+%d; j++ {
			y0 := sp[j]
			y1 := sp[j+%d]
			y2 := sp[j+%d]
			y3 := sp[j+%d]
			u0 := y0 + y1
			if u0 >= twoQ {
				u0 -= twoQ
			}
			v0 := MulModShoupLazy(y0+twoQ-y1, sA0, sA0s, q)
			u1 := y2 + y3
			if u1 >= twoQ {
				u1 -= twoQ
			}
			v1 := MulModShoupLazy(y2+twoQ-y3, sA1, sA1s, q)
			s0 := u0 + u1
			if s0 >= twoQ {
				s0 -= twoQ
			}
			sp[j] = s0
			sp[j+%d] = MulModShoupLazy(u0+twoQ-u1, sB, sBs, q)
			s1 := v0 + v1
			if s1 >= twoQ {
				s1 -= twoQ
			}
			sp[j+%d] = s1
			sp[j+%d] = MulModShoupLazy(v0+twoQ-v1, sB, sBs, q)
		}
	}
`, m, tt, hq, h, h, h, h, hq, hq, 4*tt, tt, tt, 2*tt, 3*tt, 2*tt, tt, 3*tt)
	}

	if logN&1 == 1 {
		// Closing radix-2 stage with the 1/N fold: scratch -> a.
		h := n / 2
		fmt.Fprintf(b, `
	// Closing radix-2 stage with the 1/N fold: scratch -> a.
	{
		nv, nvs := t.nInv, t.nInvShoup
		lw, lws := t.invLastW, t.invLastWShoup
		for j := 0; j < %d; j++ {
			y0 := sp[j]
			y1 := sp[j+%d]
			ap[j] = MulModShoup(y0+y1, nv, nvs, q)
			ap[j+%d] = MulModShoup(y0+twoQ-y1, lw, lws, q)
		}
	}
}
`, h, h, h)
	} else {
		// Closing stage pair (m = 4) with the 1/N fold: scratch -> a.
		tt := n / 4
		fmt.Fprintf(b, `
	// Closing stage pair m=4 (tt=%d) with the 1/N fold: scratch -> a.
	{
		sA0, sA0s := pim[2], pims[2]
		sA1, sA1s := pim[3], pims[3]
		nv, nvs := t.nInv, t.nInvShoup
		lw, lws := t.invLastW, t.invLastWShoup
		for j := 0; j < %d; j++ {
			y0 := sp[j]
			y1 := sp[j+%d]
			y2 := sp[j+%d]
			y3 := sp[j+%d]
			u0 := y0 + y1
			if u0 >= twoQ {
				u0 -= twoQ
			}
			v0 := MulModShoupLazy(y0+twoQ-y1, sA0, sA0s, q)
			u1 := y2 + y3
			if u1 >= twoQ {
				u1 -= twoQ
			}
			v1 := MulModShoupLazy(y2+twoQ-y3, sA1, sA1s, q)
			ap[j] = MulModShoup(u0+u1, nv, nvs, q)
			ap[j+%d] = MulModShoup(u0+twoQ-u1, lw, lws, q)
			ap[j+%d] = MulModShoup(v0+v1, nv, nvs, q)
			ap[j+%d] = MulModShoup(v0+twoQ-v1, lw, lws, q)
		}
	}
}
`, tt, tt, tt, 2*tt, 3*tt, 2*tt, tt, 3*tt)
	}
}
