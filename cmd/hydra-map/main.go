// Command hydra-map lowers one procedure onto a card fleet with the Section
// III mapping strategies and prints the resulting task schedule: per-card
// computation/communication queues and the simulated timeline summary.
//
// Usage:
//
//	hydra-map -proc conv -cards 8 -units 512
//	hydra-map -proc poly -cards 8 -degree 59
//	hydra-map -proc boot -cards 16 -cts 2
//	hydra-map -proc fc   -cards 8 -units 1511
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hydra/internal/mapping"
	"hydra/internal/sim"
	"hydra/internal/task"
)

func main() {
	proc := flag.String("proc", "conv", "procedure: conv, pool, fc, poly, pcmm, ccmm, boot")
	cards := flag.Int("cards", 8, "number of accelerator cards")
	units := flag.Int("units", 512, "parallel units (conv/pool/fc/pcmm/ccmm)")
	cts := flag.Int("cts", 8, "output/bootstrapped ciphertexts")
	degree := flag.Int("degree", 59, "polynomial degree (poly)")
	verbose := flag.Bool("v", false, "dump every task queue entry")
	gantt := flag.Bool("gantt", false, "render an ASCII Gantt chart of the schedule")
	flag.Parse()

	if err := run(*proc, *cards, *units, *cts, *degree, *verbose, *gantt); err != nil {
		fmt.Fprintln(os.Stderr, "hydra-map:", err)
		os.Exit(1)
	}
}

func run(proc string, cards, units, cts, degree int, verbose, gantt bool) error {
	cfg := sim.HydraConfig()
	cfg.CollectTrace = gantt
	b := task.NewBuilder(cards, min(cards, 8))
	ctx := mapping.NewContext(b, cfg.Scheme, cards)

	var err error
	switch proc {
	case "conv":
		err = ctx.DistributeBroadcast(units, mapping.ConvBNUnit, cts, "ConvBN")
	case "pool":
		err = ctx.DistributeBroadcast(units, mapping.PoolUnit, cts, "Pool")
	case "fc":
		err = ctx.FC(units, "FC")
	case "pcmm":
		err = ctx.DistributeLocal(units, mapping.PCMMUnit, cts, "PCMM")
	case "ccmm":
		err = ctx.DistributeLocal(units, mapping.CCMMUnit, cts, "CCMM")
	case "poly":
		err = ctx.PolyEval(degree, "Poly")
	case "boot":
		com := 0.0
		if cards > 1 {
			com = cfg.Network.TransferTime(ctx.CtBytes(), 0, 1, min(cards, 8))
		}
		times := mapping.OpTimesFor(cfg.Card, cfg.Scheme, 25, com)
		opts := mapping.DefaultBootstrapOptions(cfg.Scheme, cards, times)
		err = ctx.BootstrapBatch(cts, opts, times, "Boot")
	default:
		return fmt.Errorf("unknown procedure %q", proc)
	}
	if err != nil {
		return err
	}

	prog := b.Build()
	res, err := sim.Run(prog, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("procedure %s on %d cards: %d step(s)\n", proc, cards, len(prog.Steps))
	for si, st := range prog.Steps {
		nComp, nComm := 0, 0
		for c := 0; c < prog.Cards; c++ {
			nComp += len(st.Compute[c])
			nComm += len(st.Comm[c])
		}
		fmt.Printf("step %d %-8s compute tasks %5d, comm tasks %5d, span %8.3f ms\n",
			si, st.Name, nComp, nComm, res.Steps[si].Span*1e3)
		if verbose {
			for c := 0; c < prog.Cards; c++ {
				for i, t := range st.Compute[c] {
					dep := "CT_i"
					if t.WaitRecv >= 0 {
						dep = fmt.Sprintf("CT_d(recv %d)", t.WaitRecv)
					}
					fmt.Printf("  card %2d compute[%d] %-30s limbs=%d %s\n", c, i, t.Ops, t.Limbs, dep)
				}
				for i, t := range st.Comm[c] {
					kind := "send"
					if t.Kind == task.Recv {
						kind = "recv"
					}
					fmt.Printf("  card %2d comm[%d]    %s peers=%v bytes=%.1fMB\n", c, i, kind, t.Peers, t.Bytes/1e6)
				}
			}
		}
	}
	fmt.Printf("makespan %.3f ms, busiest-card compute %.3f ms, exposed comm %.3f ms (%.1f%%), %.1f MB moved\n",
		res.Makespan*1e3, res.MaxComputeBusy()*1e3, res.ExposedComm()*1e3, 100*res.CommShare(), res.BytesSent/1e6)
	fmt.Printf("operation totals: %s\n", res.OpTotals)
	if gantt {
		printGantt(res)
	}
	return nil
}

// printGantt renders per-card compute (#) and send (~) occupancy over time.
func printGantt(res *sim.Result) {
	const width = 100
	if res.Makespan <= 0 {
		return
	}
	rows := make(map[string][]byte) // "card/engine" -> lane
	lane := func(card int, engine string) []byte {
		key := fmt.Sprintf("%02d/%s", card, engine)
		if rows[key] == nil {
			r := make([]byte, width)
			for i := range r {
				r[i] = '.'
			}
			rows[key] = r
		}
		return rows[key]
	}
	for _, ev := range res.Trace {
		var engine string
		var mark byte
		switch ev.Kind {
		case "compute":
			engine, mark = "cu ", '#'
		case "send":
			engine, mark = "dtu", '~'
		default:
			continue
		}
		r := lane(ev.Card, engine)
		s := int(ev.Start / res.Makespan * width)
		e := int(ev.End / res.Makespan * width)
		if e >= width {
			e = width - 1
		}
		for i := s; i <= e; i++ {
			r[i] = mark
		}
	}
	fmt.Printf("\nschedule (0 … %.3f ms; # compute, ~ transmit):\n", res.Makespan*1e3)
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("card %s |%s|\n", k, rows[k])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
