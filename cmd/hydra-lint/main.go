// Command hydra-lint runs the repository's domain-specific static checks:
// the FHE and concurrency invariants that go vet cannot see (see
// internal/lint). It loads and type-checks the module with the standard
// library only, so it needs no dependencies beyond the Go toolchain.
//
// Usage:
//
//	hydra-lint [flags] [packages]
//
// Packages are module-relative patterns ("./...", "./internal/ring",
// "./internal/..."); the default is the whole module. Exit status is 1 when
// unsuppressed findings remain, 2 on usage or load errors.
//
// Intentional findings are suppressed in-source with
//
//	//lint:allow <check>[,<check>...] <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hydra/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list       = flag.Bool("list", false, "list available checks and exit")
		only       = flag.String("checks", "", "comma-separated list of checks to run (default: all)")
		disable    = flag.String("disable", "", "comma-separated list of checks to skip")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings with their reasons")
		jsonOut    = flag.Bool("json", false, "emit one JSON object per finding (suppressed ones included) instead of text")
	)
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks, err := selectChecks(*only, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-lint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-lint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-lint:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-lint:", err)
		return 2
	}

	match, err := patternFilter(cwd, root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hydra-lint:", err)
		return 2
	}

	diags := lint.Run(mod, checks)
	enc := json.NewEncoder(os.Stdout)
	bad := 0
	for _, d := range diags {
		if !match(d.Pos.Filename) {
			continue
		}
		if *jsonOut {
			if err := enc.Encode(jsonFinding(root, d)); err != nil {
				fmt.Fprintln(os.Stderr, "hydra-lint:", err)
				return 2
			}
			if !d.Suppressed {
				bad++
			}
			continue
		}
		if d.Suppressed {
			if *suppressed {
				fmt.Printf("%s (suppressed: %s)\n", rel(root, d), d.Reason)
			}
			continue
		}
		fmt.Println(rel(root, d))
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "hydra-lint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// finding is the one-object-per-line JSON shape of -json mode.
type finding struct {
	Check      string `json:"check"`
	Pos        string `json:"pos"` // module-relative file:line:col
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"` // the //lint:allow reason when suppressed
}

func jsonFinding(root string, d lint.Diagnostic) finding {
	pos := d.Pos
	if r, err := filepath.Rel(root, pos.Filename); err == nil {
		pos.Filename = r
	}
	return finding{
		Check:      d.Check,
		Pos:        pos.String(),
		Message:    d.Message,
		Suppressed: d.Suppressed,
		Reason:     d.Reason,
	}
}

func rel(root string, d lint.Diagnostic) string {
	if r, err := filepath.Rel(root, d.Pos.Filename); err == nil {
		d.Pos.Filename = r
	}
	return d.String()
}

func selectChecks(only, disable string) ([]*lint.Check, error) {
	all := lint.Checks()
	byName := map[string]*lint.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	parse := func(s string) (map[string]bool, error) {
		set := map[string]bool{}
		if s == "" {
			return set, nil
		}
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(lint.CheckNames(), ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	disableSet, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Check
	for _, c := range all {
		if len(onlySet) > 0 && !onlySet[c.Name] {
			continue
		}
		if disableSet[c.Name] {
			continue
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}

// patternFilter maps CLI package patterns to a filename predicate. Patterns
// are resolved relative to the invocation directory, like the go tool's.
func patternFilter(cwd, root string, args []string) (func(string) bool, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	type pat struct {
		dir       string
		recursive bool
	}
	var pats []pat
	for _, a := range args {
		p := pat{dir: a}
		if strings.HasSuffix(a, "/...") || a == "..." {
			p.recursive = true
			p.dir = strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
			if p.dir == "" {
				p.dir = "."
			}
		}
		abs := p.dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, abs)
		}
		abs = filepath.Clean(abs)
		if abs != root && !strings.HasPrefix(abs, root+string(filepath.Separator)) {
			return nil, fmt.Errorf("pattern %q points outside the module", a)
		}
		p.dir = abs
		pats = append(pats, p)
	}
	return func(filename string) bool {
		dir := filepath.Dir(filename)
		for _, p := range pats {
			if p.recursive {
				if dir == p.dir || strings.HasPrefix(dir, p.dir+string(filepath.Separator)) {
					return true
				}
			} else if dir == p.dir {
				return true
			}
		}
		return false
	}, nil
}
