package hydra

// One benchmark per table and figure of the paper's evaluation section, plus
// ablation benchmarks for the design choices called out in DESIGN.md. Each
// table/figure benchmark regenerates the corresponding result from the
// simulator; run `go test -bench=. -benchmem` or use cmd/hydrasim for the
// formatted output.

import (
	"testing"

	"hydra/internal/experiments"
	"hydra/internal/hw"
	"hydra/internal/mapping"
	"hydra/internal/model"
	"hydra/internal/sim"
	"hydra/internal/task"
)

// BenchmarkTable1 regenerates the application-level parallelism table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates the full-system performance comparison
// (6 measured prototypes × 4 benchmarks).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates the EDAP efficiency comparison.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates the FPGA resource utilization report.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.FormatTable4(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5 regenerates the DFT parameter selection (Eq. 1 search over
// logSlots 12-15 for the three prototypes).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the key-procedure speedups of Hydra-M/L over
// Hydra-S on all four benchmarks.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the full-system energy breakdown.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates the Hydra vs FAB scalability comparison
// (computation vs exposed communication at 8 and 64 cards).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the scalability sweeps: speedup-vs-cards curves
// for ResNet-50 and OPT-6.7B and the communication-share curve.
func BenchmarkFig9(b *testing.B) {
	cards := []int{1, 8, 64} // the full 1..64 axis is available via cmd/hydrasim
	for i := 0; i < b.N; i++ {
		for _, net := range []model.Network{model.ResNet50(), model.OPT67B()} {
			if _, err := experiments.Fig9(net, cards); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation benchmarks (design choices of DESIGN.md §5) -----------------

func benchProgram(b *testing.B, cards int, emit func(*mapping.Context) error) {
	b.Helper()
	cfg := sim.HydraConfig()
	for i := 0; i < b.N; i++ {
		bd := task.NewBuilder(cards, min(cards, 8))
		ctx := mapping.NewContext(bd, cfg.Scheme, cards)
		if err := emit(ctx); err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(bd.Build(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Makespan*1e3, "simulated-ms")
	}
}

// BenchmarkAblationConvRingBroadcast vs BenchmarkAblationConvGather compare
// the paper's pipelined sequential broadcast (Fig. 2) against naive
// gather-and-rebroadcast aggregation for a convolution layer.
func BenchmarkAblationConvRingBroadcast(b *testing.B) {
	benchProgram(b, 8, func(c *mapping.Context) error {
		return c.DistributeBroadcast(512, mapping.ConvBNUnit, 16, "ConvBN")
	})
}

func BenchmarkAblationConvGather(b *testing.B) {
	benchProgram(b, 8, func(c *mapping.Context) error {
		return c.DistributeGather(512, mapping.ConvBNUnit, 16, "ConvBN")
	})
}

// BenchmarkAblationDFTTree vs BenchmarkAblationDFTStar compare tree vs
// single-node aggregation of the giant-step partial sums (Fig. 3(d)).
func BenchmarkAblationDFTTree(b *testing.B) {
	benchProgram(b, 16, func(c *mapping.Context) error {
		return c.MatVec(mapping.MatVecOptions{BS: 2, GS: 64}, "DFT")
	})
}

func BenchmarkAblationDFTStar(b *testing.B) {
	benchProgram(b, 16, func(c *mapping.Context) error {
		return c.MatVec(mapping.MatVecOptions{BS: 2, GS: 64, StarAggregation: true}, "DFT")
	})
}

// BenchmarkAblationUniformBS vs BenchmarkAblationDistributedBS compare the
// paper's uniform baby steps against splitting them across nodes
// (Section III-B point (1)).
func BenchmarkAblationUniformBS(b *testing.B) {
	benchProgram(b, 8, func(c *mapping.Context) error {
		return c.MatVec(mapping.MatVecOptions{BS: 8, GS: 32}, "DFT")
	})
}

func BenchmarkAblationDistributedBS(b *testing.B) {
	benchProgram(b, 8, func(c *mapping.Context) error {
		return c.MatVec(mapping.MatVecOptions{BS: 8, GS: 32, DistributedBS: true}, "DFT")
	})
}

// BenchmarkAblationHostManagedSync runs the same ResNet-18 program on the
// Hydra interconnect and on the FAB host-relayed interconnect with identical
// cards, isolating the communication-architecture contribution. At 8 cards
// the host path mostly hides behind computation; at 64 cards it dominates
// (the Fig. 8 effect).
func BenchmarkAblationHostManagedSync(b *testing.B) {
	fabCfg := sim.FABConfig()
	fabCfg.Card = hw.HydraCard() // same cards, different interconnect
	for _, mode := range []struct {
		name  string
		cfg   sim.Config
		cards int
		cps   int
	}{
		{"hydra-switch-8", sim.HydraConfig(), 8, 8},
		{"fab-hostpath-8", fabCfg, 8, 2},
		{"hydra-switch-64", sim.HydraConfig(), 64, 8},
		{"fab-hostpath-64", fabCfg, 64, 2},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd := task.NewBuilder(mode.cards, mode.cps)
				ctx := mapping.NewContext(bd, mode.cfg.Scheme, mode.cards)
				com := mode.cfg.Network.TransferTime(ctx.CtBytes(), 0, 1, mode.cps)
				times := mapping.OpTimesFor(mode.cfg.Card, mode.cfg.Scheme, 25, com)
				boot := mapping.DefaultBootstrapOptions(mode.cfg.Scheme, mode.cards, times)
				if err := model.ResNet18().Emit(ctx, boot, times); err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(bd.Build(), mode.cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Makespan, "simulated-s")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures the discrete-event engine itself on
// a large OPT-6.7B/64-card program (hundreds of thousands of task nodes).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := experiments.HydraL()
	prog, err := p.Build(model.OPT67B())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(prog, p.Sim); err != nil {
			b.Fatal(err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
